package stream

import (
	"encoding/binary"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"odr/internal/codec"
	"odr/internal/core"
	"odr/internal/frame"
	"odr/internal/obs"
	"odr/internal/realrt"
	"odr/internal/timerwheel"
)

// Hub streams one game to many clients — the "render once, view many" shape
// of spectating and co-streaming. The shared game renders on demand under a
// single ODR pacer (inputs from any client cancel its delay, PriorityFrame
// style); each frame is then encoded once per resolution lane and the
// resulting artifact fans out to every viewer on the lane. Every client
// keeps its own Mul-Buf latest-wins slot and its own pacer, so a slow or
// slower-paced client never stalls the game or its peers — its obsolete
// artifacts are simply dropped before transmission, which is ODR's on-demand
// principle applied per viewer. A viewer whose delta chain skipped frames
// (or a late joiner needing a keyframe) is repaired by splicing intra-coded
// tiles out of the shared encoder's state, never by forcing a keyframe on
// everyone; see encLane and codec.AppendSplice.
type Hub struct {
	cfg   HubConfig
	dom   *realrt.Domain
	epoch time.Time // shared epoch; lane and session domains align to it
	game  *Game
	box   *core.InputBox
	pace  *core.Pacer

	// Lanes (one shared encoder per downscale divisor) are created lazily
	// under laneMu and published copy-on-write; the render loop reads the
	// slice lock-free every frame.
	laneMu sync.Mutex
	lanes  atomic.Pointer[[]*encLane]
	laneWG sync.WaitGroup

	nextID atomic.Uint32

	rendered int64
	inputs   int64

	// Lifetime totals across detached sessions (atomics).
	served       int64
	totalSent    int64
	totalDropped int64
	evicted      int64 // sessions cut for blowing a read/write deadline

	stopOnce sync.Once
	stopping chan struct{}
	renderWG sync.WaitGroup

	// Drain sequencing: Drain closes draining; the renderer retires, each
	// lane flushes its queued frame, every session flushes its queued
	// artifacts and seals with msgBye, then the hub stops.
	drainOnce sync.Once
	draining  chan struct{}

	// pixFree recycles render pixel buffers, returned by frame retirement
	// once every lane is done with a frame.
	pixMu   sync.Mutex
	pixFree [][]byte

	// sendErr, when non-nil, is consulted by every session before sending
	// (test hook: fault injection on the send path without breaking conns).
	sendErr atomic.Pointer[func(sessionID uint32) error]

	// evictCtr mirrors evicted into the metrics registry (nil-safe).
	evictCtr *obs.Counter

	// tileCache is the content-addressed encoded-tile cache every v2 lane
	// encoder shares: a tile's payload is a pure function of its content
	// bytes, so one cache serves frame payloads, stripe refreshes and splice
	// cuts across all lanes without affecting any bitstream byte.
	tileCache *codec.TileCache

	// Cache stat publication: TileCache keeps its own totals; the hub mirrors
	// them into the registry as deltas after every encode and every splice,
	// so a post-drain scrape is exact. cachePubMu orders concurrent
	// publishers (lane loops, session send loops).
	cachePubMu                       sync.Mutex
	pubHits, pubMisses, pubEvictions int64
	cacheHits                        *obs.Counter
	cacheMisses                      *obs.Counter
	cacheEvictions                   *obs.Counter

	// Observability (nil-safe; see HubConfig.Trace/Metrics). The hub-level
	// probe carries the shared renderer's and shared encoders' energy under
	// session="shared"; per-viewer probes live on each hubSession.
	tr    *obs.Tracer
	ins   obs.FrameInstruments
	probe *sessionProbe

	// eng is the event-driven session engine: a fixed sender worker pool, a
	// pacing timer wheel, and a shared input-reader pool replace the old
	// three-goroutines-per-viewer session loops (see engine.go).
	eng *hubEngine

	// paceHook, when non-nil, observes every per-session pacing decision
	// (test hook: the differential pacing test shadows the engine's
	// arithmetic against a reference pacer). Set before Run; read by sender
	// workers.
	paceHook func(id uint32, start, end, d time.Duration)
}

// HubConfig configures a Hub.
type HubConfig struct {
	// Width and Height are the stream resolution (defaults 320×180).
	Width, Height int
	// TargetFPS paces the shared renderer (default 60).
	TargetFPS float64
	// Codec configures the shared per-lane encoders.
	Codec codec.Options
	// RenderCost optionally emulates a heavier GPU.
	RenderCost func() time.Duration
	// Trace, when non-nil, records the shared game's frame lifecycle and
	// per-viewer events against the hub's wall clock (the simulator's
	// vocabulary; export with Trace.WriteChromeTrace).
	Trace *obs.Tracer
	// Metrics, when non-nil, receives live hub telemetry under the
	// obs.FrameInstruments names.
	Metrics *obs.Registry
	// WriteTimeout, when > 0, bounds each per-session frame write; a viewer
	// that cannot drain its socket for this long is evicted. Latest-wins
	// dropping already shields the hub from slow viewers, so eviction only
	// fires when even single-frame writes stall. 0 disables it.
	WriteTimeout time.Duration
	// ReadTimeout, when > 0, bounds each read on a session's input path,
	// catching half-open viewer connections. 0 disables it — idle viewers
	// send nothing, so only set this when inputs (or keepalives) flow.
	ReadTimeout time.Duration
	// Logf, when non-nil, receives the final stats summary from Stop (and
	// nothing else); typically log.Printf. Headless runs set it so every
	// hub leaves evidence of what it did.
	Logf func(format string, args ...any)
}

func (c *HubConfig) applyDefaults() {
	if c.Width == 0 {
		c.Width = 320
	}
	if c.Height == 0 {
		c.Height = 180
	}
	if c.TargetFPS == 0 {
		c.TargetFPS = 60
	}
}

// hubSession is one attached client.
type hubSession struct {
	id   uint32
	hub  *Hub
	lane *encLane
	conn net.Conn

	// dom is the session's own wait domain (hub-epoch aligned), so a
	// blocked viewer never contends on a lock shared with the renderer,
	// the lane, or any other viewer.
	dom *realrt.Domain
	buf *core.MultiBuffer

	pace      *core.Pacer
	downscale int // 1 = full resolution; n = 1/n width and height
	w, h      int // this session's output dimensions

	// Verbatim-chain state (send-loop goroutine only): the shared seq and
	// encoder index of the last frame this viewer displayed. An artifact
	// whose parentSeq matches lastSentSeq forwards verbatim; anything else
	// is bridged with a spliced catch-up frame.
	lastSentSeq uint64
	lastEncIdx  int64

	// vectored marks a transport with real writev (TCP/Unix): verbatim
	// sends batch the private header with the shared bitstream and never
	// copy the payload. Other transports (pipes, wrappers) get the
	// classic contiguous two-write framing instead — net.Buffers would
	// degrade to one syscall per slice there, changing write boundaries
	// for no gain.
	vectored bool

	// Engine scheduling state (see engine.go): wk pins the session to one
	// sender stripe so its writes stay ordered; sched is the parked/queued/
	// pacing state machine; timer carries its ODR pacing deadline on the
	// hub's wheel. sendMu excludes teardown's buffer drain from a send pass
	// (same-stripe serialization covers worker-vs-worker already).
	wk       int
	sched    atomic.Int32
	timer    timerwheel.Timer
	detached atomic.Bool
	sendMu   sync.Mutex

	// rdbuf is the session's input read buffer, owned by its reader stripe.
	rdbuf []byte

	detachOnce sync.Once
	detachCb   func(SessionStats)

	sent    int64
	dropped int64

	// wantKey is set by inputLoop on msgKeyReq and consumed by the send
	// loop before the next transmit.
	wantKey atomic.Bool

	// carried holds the input stamps of artifacts this session dropped
	// (latest-wins) before sending; the next frame it does send answers
	// them, so the issuing client still gets its MtP sample.
	carriedMu sync.Mutex
	carried   []frame.InputStamp

	// probe publishes this viewer's live QoE/energy series (nil-safe).
	probe *sessionProbe

	closeOnce sync.Once
}

// NewHub returns a hub ready to Run.
func NewHub(cfg HubConfig) *Hub {
	cfg.applyDefaults()
	if cfg.Codec.BitstreamVersion() == 2 {
		// Every lane encoder shares one content-addressed tile cache and
		// rotates intra refreshes across frames instead of emitting periodic
		// full keys (joiners still get spliced keys on demand). Both are
		// bitstream-deterministic, so hub streams stay byte-identical across
		// lane membership and worker counts.
		if cfg.Codec.Cache == nil {
			cfg.Codec.Cache = codec.NewTileCache(0)
		}
		cfg.Codec.StripeKeyframes = true
	}
	epoch := time.Now()
	dom := realrt.NewDomainAt(epoch)
	h := &Hub{
		cfg:      cfg,
		dom:      dom,
		epoch:    epoch,
		game:     NewGame(cfg.Width, cfg.Height),
		box:      core.NewInputBox(dom),
		pace:     core.NewPacer(cfg.TargetFPS),
		stopping: make(chan struct{}),
		draining: make(chan struct{}),
		tr:       cfg.Trace,
		ins:      obs.NewFrameInstruments(cfg.Metrics),
		evictCtr: cfg.Metrics.Counter(obs.NameSessionsEvicted),
	}
	h.tileCache = cfg.Codec.Cache
	h.eng = newHubEngine(h)
	if reg := cfg.Metrics; reg != nil {
		v := registerLiveVecs(reg)
		h.cacheHits = v.cacheHits
		h.cacheMisses = v.cacheMisses
		h.cacheEvictions = v.cacheEvictions
		h.eng.queueGauge = v.senderQueueDepth
		h.eng.lagGauge = v.timerwheelLag
		h.eng.coalescedCtr = v.coalescedWrites
	}
	h.probe = newSessionProbe(cfg.Metrics, "shared")
	h.game.ExtraCost = cfg.RenderCost
	if h.tr != nil {
		h.pace.OnDelay = func(end, d time.Duration) {
			h.tr.Span(obs.TrackPacer, "pace", 0, end, end+d)
		}
	}
	return h
}

// deadlineAfter converts a timeout into an absolute conn deadline on the
// hub's own clock domain: epoch + domain-now + d. Every hub deadline (read,
// write, drain seal) routes through here so they all live on the one
// epoch-aligned timeline instead of sampling the wall clock ad hoc.
func (h *Hub) deadlineAfter(d time.Duration) time.Time {
	return h.epoch.Add(h.dom.Now() + d)
}

// Clients returns the number of attached clients.
func (h *Hub) Clients() int {
	n := 0
	if ls := h.lanes.Load(); ls != nil {
		for _, ln := range *ls {
			for i := range ln.shards {
				sh := &ln.shards[i]
				sh.mu.Lock()
				n += len(sh.m)
				sh.mu.Unlock()
			}
		}
	}
	return n
}

// Rendered returns the number of frames the shared game has rendered.
func (h *Hub) Rendered() int64 { return atomic.LoadInt64(&h.rendered) }

// hubPixFreeCap bounds the render-buffer free list: the renderer plus one
// in-flight frame per lane is the realistic ceiling.
const hubPixFreeCap = 4

// pixGet takes a recycled render buffer or allocates the first few.
func (h *Hub) pixGet() []byte {
	h.pixMu.Lock()
	if n := len(h.pixFree); n > 0 {
		b := h.pixFree[n-1]
		h.pixFree = h.pixFree[:n-1]
		h.pixMu.Unlock()
		return b
	}
	h.pixMu.Unlock()
	return make([]byte, h.game.FrameBytes())
}

func (h *Hub) pixPut(b []byte) {
	h.pixMu.Lock()
	if len(h.pixFree) < hubPixFreeCap {
		h.pixFree = append(h.pixFree, b)
	}
	h.pixMu.Unlock()
}

// Run renders the shared game until Stop; it drives all attached sessions.
func (h *Hub) Run() {
	h.renderWG.Add(1)
	defer h.renderWG.Done()
	w := realrt.NewWaiter(h.dom)
	var seq uint64
	for {
		select {
		case <-h.stopping:
			return
		case <-h.draining:
			return
		default:
		}
		start := h.dom.Now()
		stamps := h.box.ConsumePending()
		for range stamps {
			h.game.OnInput()
		}
		pix := h.pixGet()
		h.game.Render(pix)
		seq++
		f := &frame.Frame{Seq: seq, Pixels: pix, RenderStart: start, RenderEnd: h.dom.Now()}
		core.Tag(f, stamps)
		atomic.AddInt64(&h.rendered, 1)
		h.tr.Span(obs.TrackRender, "render", f.Seq, f.RenderStart, f.RenderEnd)
		h.ins.Rendered.Inc()
		h.ins.Render.ObserveDuration(f.RenderEnd - f.RenderStart)
		h.probe.onRender(f.RenderEnd - f.RenderStart)
		h.probe.maybeFlush(h.dom.Now())
		if f.Priority {
			h.tr.Instant(obs.TrackRender, "priority-frame", f.Seq, f.RenderStart)
			h.ins.Priority.Inc()
		}

		// Offer the frame to every lane: each encodes it once (latest-wins,
		// so a lane still busy with an older frame drops it) and fans the
		// artifact out to its viewers. The pixel buffer recycles once the
		// last lane retires the frame.
		var lanes []*encLane
		if lsP := h.lanes.Load(); lsP != nil {
			lanes = *lsP
		}
		if len(lanes) == 0 {
			h.pixPut(pix)
		} else {
			var rc atomic.Int32
			rc.Store(int32(len(lanes)))
			f.Retire = func() {
				if rc.Add(-1) == 0 {
					h.pixPut(pix)
				}
			}
			for _, ln := range lanes {
				ln.offer(f)
			}
		}

		// ODR pacing with PriorityFrame: an input arrival cancels the
		// render delay.
		if f.Priority {
			h.pace.SkipFrame()
			continue
		}
		if d := h.pace.PaceAfterObserved(start, h.dom.Now()); d > 0 {
			h.box.DelayInterruptible(w, d)
		}
	}
}

// allSessions snapshots every attached session across lanes and shards.
func (h *Hub) allSessions() []*hubSession {
	var sessions []*hubSession
	if ls := h.lanes.Load(); ls != nil {
		for _, ln := range *ls {
			for i := range ln.shards {
				sh := &ln.shards[i]
				sh.mu.Lock()
				for _, s := range sh.m {
					sessions = append(sessions, s)
				}
				sh.mu.Unlock()
			}
		}
	}
	return sessions
}

// Stop shuts down the hub and detaches every client. If HubConfig.Logf is
// set, Stop logs a final stats summary once the renderer has quiesced.
func (h *Hub) Stop() {
	h.stopOnce.Do(func() {
		close(h.stopping)
		// Wake the renderer if it is inside DelayInterruptible.
		h.box.OnInput(0, 0)
		// Taking laneMu orders this sweep after any in-flight lane creation;
		// Attach re-checks stopping under the shard lock, so a racing attach
		// either lands in this sweep or refuses itself.
		h.laneMu.Lock()
		if ls := h.lanes.Load(); ls != nil {
			for _, ln := range *ls {
				ln.buf.Close()
			}
		}
		h.laneMu.Unlock()
		// Close every session and kick it so a sender worker observes the
		// closed buffer and tears it down; engine shutdown below drains those
		// kicks and sweeps any pacing stragglers whose wheel timers it drops.
		for _, s := range h.allSessions() {
			s.close()
			h.eng.kick(s)
		}
		h.renderWG.Wait()
		h.laneWG.Wait()
		h.eng.shutdown()
		if h.cfg.Logf != nil {
			snap := h.Snapshot()
			h.cfg.Logf("hub stopped: rendered=%v inputs=%v sessions_served=%v sent=%v dropped=%v",
				snap["rendered"], snap["inputs"], snap["sessions_served"], snap["sent"], snap["dropped"])
		}
	})
}

// Drain ends the hub gracefully: the renderer retires, each lane encodes the
// frame it already has queued, every attached session flushes its queued
// artifacts and receives an orderly msgBye before its connection closes.
// Drain returns nil once all sessions have detached, or ErrDrainTimeout if
// some were still attached when the timeout passed; either way the hub is
// stopped when it returns.
func (h *Hub) Drain(timeout time.Duration) error {
	h.drainOnce.Do(func() { close(h.draining) })
	// Wake the renderer out of a pacing delay so it observes draining.
	h.box.OnInput(0, 0)
	h.renderWG.Wait()
	// Renderer gone: close lane buffers so each lane flushes its final
	// queued frame and exits. lane() refuses creation once draining is
	// closed, and takes laneMu to publish, so this sweep under laneMu sees
	// every lane that will ever exist.
	h.laneMu.Lock()
	if ls := h.lanes.Load(); ls != nil {
		for _, ln := range *ls {
			ln.buf.Close()
		}
	}
	h.laneMu.Unlock()
	h.laneWG.Wait()
	deadline := time.Now().Add(timeout)
	for {
		// Close session buffers (not conns): each kicked session drains what
		// is buffered on a sender worker, writes msgBye, then tears down.
		// Re-closing and re-kicking every poll round covers sessions that
		// raced Attach; sessions mid-pacing requeue when their timer fires.
		sessions := h.allSessions()
		if len(sessions) == 0 {
			h.Stop()
			return nil
		}
		for _, s := range sessions {
			s.buf.Close()
			h.eng.kick(s)
		}
		if time.Now().After(deadline) {
			h.Stop()
			return ErrDrainTimeout
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func (h *Hub) drainRequested() bool {
	select {
	case <-h.draining:
		return true
	default:
		return false
	}
}

// publishCacheStats mirrors the shared tile cache's running totals into the
// registry counters as deltas. Callers invoke it right after any operation
// that did cache lookups (a lane encode, a splice), so once the hub drains
// the scraped counters equal the cache's totals exactly — that equality is
// the soak's conservation invariant.
func (h *Hub) publishCacheStats() {
	if h.tileCache == nil {
		return
	}
	hits, misses, evs := h.tileCache.Stats()
	h.cachePubMu.Lock()
	dh, dm, de := hits-h.pubHits, misses-h.pubMisses, evs-h.pubEvictions
	h.pubHits, h.pubMisses, h.pubEvictions = hits, misses, evs
	h.cachePubMu.Unlock()
	h.cacheHits.Add(dh)
	h.cacheMisses.Add(dm)
	h.cacheEvictions.Add(de)
}

// Evicted returns how many sessions were cut for blowing a deadline.
func (h *Hub) Evicted() int64 { return atomic.LoadInt64(&h.evicted) }

// evictSession records one deadline eviction.
func (h *Hub) evictSession() {
	atomic.AddInt64(&h.evicted, 1)
	h.evictCtr.Inc()
	h.tr.Instant(obs.TrackNetwork, "evict", 0, h.dom.Now())
}

// Snapshot reports the hub's live state for /debug/odr: lifetime frame and
// input counters, totals across detached sessions, and the per-session
// counters of every client still attached. Safe to call concurrently with
// Run.
func (h *Hub) Snapshot() map[string]any {
	sessions := h.allSessions()
	live := make([]map[string]any, 0, len(sessions))
	var liveSent, liveDropped int64
	for _, s := range sessions {
		sent := atomic.LoadInt64(&s.sent)
		dropped := atomic.LoadInt64(&s.dropped)
		liveSent += sent
		liveDropped += dropped
		live = append(live, map[string]any{
			"id":        s.id,
			"sent":      sent,
			"dropped":   dropped,
			"downscale": s.downscale,
			"width":     s.w,
			"height":    s.h,
		})
	}
	served := atomic.LoadInt64(&h.served)
	return map[string]any{
		"target_fps":      h.cfg.TargetFPS,
		"rendered":        atomic.LoadInt64(&h.rendered),
		"inputs":          atomic.LoadInt64(&h.inputs),
		"sessions_served": served + int64(len(live)),
		"sent":            atomic.LoadInt64(&h.totalSent) + liveSent,
		"dropped":         atomic.LoadInt64(&h.totalDropped) + liveDropped,
		"evicted":         atomic.LoadInt64(&h.evicted),
		"clients":         live,
	}
}

// SessionStats reports one attached client's counters.
type SessionStats struct {
	Sent    int64
	Dropped int64
}

// AttachOptions configures one viewer session.
type AttachOptions struct {
	// ClientFPS paces this viewer (0 = the hub's full rate).
	ClientFPS float64
	// Downscale divides the stream resolution for this viewer (0 or 1 =
	// full resolution; 2 = quarter-area thumbnail, and so on). The hub
	// renders once at full resolution; each distinct divisor gets one
	// shared lane encoder that box-filters before encoding, so thumbnails
	// cost a fraction of the encode work and bandwidth.
	Downscale int
	// Detach is invoked with the session's counters when it ends.
	Detach func(SessionStats)
}

// Attach adds a client connection to the hub with its own pacing target
// (0 = the hub's rate). It returns immediately; the session runs until the
// connection fails or the hub stops. detach is invoked when the session
// ends.
func (h *Hub) Attach(conn net.Conn, clientFPS float64, detach func(SessionStats)) {
	h.AttachWithOptions(conn, AttachOptions{ClientFPS: clientFPS, Detach: detach})
}

// allocID returns the next session id, skipping 0 on wrap (0 is the "no
// session" sentinel in packed input ids).
func (h *Hub) allocID() uint32 {
	for {
		if id := h.nextID.Add(1); id != 0 {
			return id
		}
	}
}

// AttachWithOptions is Attach with per-viewer resolution control.
func (h *Hub) AttachWithOptions(conn net.Conn, opts AttachOptions) {
	refuse := func() {
		conn.Close()
		if opts.Detach != nil {
			opts.Detach(SessionStats{})
		}
	}
	select {
	case <-h.stopping:
		refuse()
		return
	case <-h.draining:
		refuse()
		return
	default:
	}
	div := opts.Downscale
	if div < 1 {
		div = 1
	}
	ln := h.lane(div)
	if ln == nil {
		// Raced a Stop or Drain past the check above.
		refuse()
		return
	}
	id := h.allocID()
	s := &hubSession{
		id:        id,
		hub:       h,
		lane:      ln,
		conn:      conn,
		dom:       realrt.NewDomainAt(h.epoch),
		pace:      core.NewPacer(opts.ClientFPS),
		downscale: div,
		w:         ln.w,
		h:         ln.h,
		wk:        int(id),
		vectored:  supportsVectoredWrites(conn),
		detachCb:  opts.Detach,
	}
	s.buf = core.NewMultiBuffer(s.dom)
	// The timer's job is only to requeue the session once its pacing delay
	// elapses; a Submit refused by a closing pool is fine — shutdown's
	// straggler sweep tears the session down instead.
	s.timer.Fn = func() {
		if s.sched.CompareAndSwap(schedPacing, schedQueued) {
			if !h.eng.senders.Submit(s.wk, s) {
				s.sched.Store(schedParked)
			}
		}
	}
	h.eng.start()
	sh := ln.shard(id)
	sh.mu.Lock()
	select {
	case <-h.stopping:
		// A Stop between the entry check and here has already snapshotted
		// (or will not see) this session; registering now would leak it
		// past Stop's sweep. Refuse instead — under the same lock Stop's
		// sweep serializes against.
		sh.mu.Unlock()
		refuse()
		return
	default:
	}
	sh.m[id] = s
	sh.rebuildLocked()
	sh.mu.Unlock()
	s.probe = newSessionProbe(h.cfg.Metrics, "h"+strconv.FormatUint(uint64(id), 10))
	recordSessionStart(h.cfg.Metrics, "Hub", h.cfg.Codec)
	// No per-session goroutines: the engine's reader pool serves the input
	// path and lane fan-out kicks the sender pool when artifacts arrive. The
	// initial kick covers nothing today (the buffer is empty) but is cheap
	// insurance against future reorderings.
	h.eng.readerFor(id).register(s)
	h.eng.kick(s)
}

// close tears the session down.
func (s *hubSession) close() {
	s.closeOnce.Do(func() {
		s.buf.Close()
		s.conn.Close()
	})
}

// sealOnDrain writes the orderly msgBye when the hub is draining, so the
// client sees a graceful end instead of an abrupt close. Every send-pass
// exit path routes through here — including send errors — because a client
// that still has a working read half deserves the bye even if the last
// frame write failed.
func (s *hubSession) sealOnDrain() {
	if !s.hub.drainRequested() {
		return
	}
	if wt := s.hub.cfg.WriteTimeout; wt > 0 {
		// The hub's clock domain supplies the deadline (not time.Now): every
		// hub deadline lives on the same epoch-aligned timeline.
		s.conn.SetWriteDeadline(s.hub.deadlineAfter(wt))
	}
	writeMsg(s.conn, msgBye, nil)
}

// sendArtifact delivers one shared encode to this viewer: verbatim when the
// viewer's chain is intact (writev of its private header + the shared
// bitstream, zero copies), spliced from the lane encoder's state when the
// chain skipped frames, the viewer just joined, or it requested a keyframe.
// It runs on a sender worker with that worker's scratch buffers; sent
// reports whether a frame actually shipped, and delay carries the session's
// ODR pacing delay for the engine to put on the timer wheel.
func (s *hubSession) sendArtifact(scr *senderScratch, f *frame.Frame, art *encArtifact) (sent bool, delay time.Duration, err error) {
	h := s.hub
	if hk := h.sendErr.Load(); hk != nil {
		if err := (*hk)(s.id); err != nil {
			s.sealOnDrain()
			return false, 0, err
		}
	}
	if art.seq <= s.lastSentSeq {
		// Stale artifact (the viewer already advanced past it via a
		// splice): carry its stamps so their MtP samples still answer.
		if len(f.Inputs) > 0 {
			s.carriedMu.Lock()
			s.carried = append(s.carried, f.Inputs...)
			s.carriedMu.Unlock()
		}
		return false, 0, nil
	}
	start := h.dom.Now()
	wantKey := s.wantKey.Swap(false)
	verbatim := art.key ||
		(!wantKey && s.lastSentSeq != 0 && art.parentSeq == s.lastSentSeq)

	// Only the stamp belonging to this session is echoed: MtP is measured
	// on the issuing client's clock. Stamps carried from dropped older
	// artifacts are answered by this frame too.
	s.carriedMu.Lock()
	stamps := append(s.carried, f.Inputs...)
	s.carried = nil
	s.carriedMu.Unlock()
	var inputID uint64
	var inputNanos int64
	for _, st := range stamps {
		if sessionOf(st.ID) == s.id {
			inputID = uint64(st.ID)
			inputNanos = int64(st.Issued)
			break
		}
	}

	var sentBytes int
	var frameSeq uint64
	txStart := h.dom.Now()
	if verbatim {
		var parentSeq uint64
		if !art.key {
			parentSeq = art.parentSeq
		}
		meta := frameMeta{
			seq:         art.seq,
			parentSeq:   parentSeq,
			inputID:     inputID,
			inputNanos:  inputNanos,
			renderNanos: art.renderNanos,
		}
		if wt := h.cfg.WriteTimeout; wt > 0 {
			s.conn.SetWriteDeadline(h.deadlineAfter(wt))
		}
		if s.vectored {
			// One writev batches the 49-byte private head with the shared
			// bitstream: the encoded payload is never copied per viewer.
			scr.head[0] = msgFrame
			binary.LittleEndian.PutUint32(scr.head[1:], uint32(frameHeaderLen+len(art.bs)))
			putFrameHeaderCRC(scr.head[5:], meta, art.crc)
			scr.iovArr[0] = scr.head[:]
			scr.iovArr[1] = art.bs
			scr.iov = scr.iovArr[:]
			if _, err := scr.iov.WriteTo(s.conn); err != nil {
				s.sealOnDrain()
				return false, 0, err
			}
		} else {
			payload := append(scr.payload[:frameHeaderLen], art.bs...)
			scr.payload = payload
			putFrameHeaderCRC(payload, meta, art.crc)
			if err := writeMsg(s.conn, msgFrame, payload); err != nil {
				s.sealOnDrain()
				return false, 0, err
			}
		}
		sentBytes = frameHeaderLen + len(art.bs)
		frameSeq = art.seq
		s.lastSentSeq = art.seq
		s.lastEncIdx = art.encIdx
	} else {
		// Chain broken (drops), fresh joiner, or keyframe request: splice a
		// catch-up frame from the lane encoder's current state. parent = 0
		// cuts a full key; otherwise only tiles changed since the viewer's
		// last displayed encode ship, intra-coded.
		ln := s.lane
		var parent int64
		if !wantKey && s.lastSentSeq != 0 {
			parent = s.lastEncIdx
		}
		ln.encMu.Lock()
		payload, err := ln.enc.AppendSplice(scr.payload[:frameHeaderLen], parent)
		seq := ln.lastSeq
		encIdx := ln.enc.Frames()
		renderNanos := ln.lastRenderNanos
		spliceTiles := ln.enc.LastSpliceTiles()
		ln.encMu.Unlock()
		h.publishCacheStats()
		if err == nil {
			// Counted whether or not the write below lands: the cache lookups
			// happened at splice time, and the conservation invariant
			// (hits+misses == dirty+spliced tiles) must stay exact.
			ln.splicedTiles.Add(int64(spliceTiles))
		}
		if err != nil {
			// The shared encoder cannot produce this viewer's frame; end
			// the session through the same drain-aware teardown as a
			// buffer close so a draining hub still seals with msgBye.
			s.sealOnDrain()
			return false, 0, err
		}
		scr.payload = payload
		spliceEnd := h.dom.Now()
		s.probe.onEncode(spliceEnd - start) // splice work is this viewer's
		var hdrParent uint64
		if parent > 0 {
			hdrParent = s.lastSentSeq
		}
		bs := payload[frameHeaderLen:]
		putFrameHeader(payload, frameMeta{
			seq:         seq,
			parentSeq:   hdrParent,
			inputID:     inputID,
			inputNanos:  inputNanos,
			renderNanos: renderNanos,
		}, bs)
		if wt := h.cfg.WriteTimeout; wt > 0 {
			s.conn.SetWriteDeadline(h.deadlineAfter(wt))
		}
		txStart = h.dom.Now()
		if err := writeMsg(s.conn, msgFrame, payload); err != nil {
			s.sealOnDrain()
			return false, 0, err
		}
		if parent > 0 {
			ln.splicedDeltas.Inc()
		} else {
			ln.splicedKeys.Inc()
		}
		sentBytes = len(payload)
		frameSeq = seq
		s.lastSentSeq = seq
		s.lastEncIdx = encIdx
	}

	atomic.AddInt64(&s.sent, 1)
	txEnd := h.dom.Now()
	h.tr.Span(obs.TrackNetwork, "tx", frameSeq, txStart, txEnd)
	h.ins.Displayed.Inc()
	h.ins.Tx.ObserveDuration(txEnd - txStart)
	var mtpUs int64
	if inputID != 0 {
		mtpUs = s.probe.mtpEstimate(txEnd)
		if mtpUs > 0 {
			h.ins.MtP.Observe(mtpUs)
		}
	}
	s.probe.onSend(txEnd, sentBytes, txEnd-txStart, mtpUs)
	if !f.Priority {
		// Same ODR arithmetic as the old in-loop sleep — the delay now rides
		// the timer wheel instead of blocking a goroutine. The differential
		// pacing test pins this call bit-for-bit against a reference pacer.
		end := h.dom.Now()
		d := s.pace.PaceAfterObserved(start, end)
		if h.paceHook != nil {
			h.paceHook(s.id, start, end, d)
		}
		if d > 0 {
			delay = d
		}
	}
	return true, delay, nil
}

// supportsVectoredWrites reports whether the conn's underlying transport
// implements vectored I/O (writev), making net.Buffers a genuine scatter
// write rather than a loop of single writes.
func supportsVectoredWrites(c net.Conn) bool {
	switch c.(type) {
	case *net.TCPConn, *net.UnixConn:
		return true
	}
	return false
}

// packInput embeds the session id in the high 32 bits of a client-local
// input id so the responding frame is attributed to the right client. The
// local id is masked to 32 bits: clients allocate ids sequentially from 1,
// so the truncated id stays unique within any realistic in-flight window,
// and the hub only uses it as an opaque echo.
func packInput(session uint32, local uint64) frame.InputID {
	return frame.InputID(uint64(session)<<32 | (local & 0xFFFFFFFF))
}

// sessionOf extracts the session id from a packed input id.
func sessionOf(id frame.InputID) uint32 {
	return uint32(uint64(id) >> 32)
}

// downsample box-filters src (srcW wide RGBA) into dst (dstW×dstH RGBA) with
// the given integer divisor.
func downsample(src []byte, srcW int, dst []byte, dstW, dstH, div int) {
	area := div * div
	for y := 0; y < dstH; y++ {
		for x := 0; x < dstW; x++ {
			var r, g, b, a int
			for dy := 0; dy < div; dy++ {
				row := ((y*div + dy) * srcW) * 4
				for dx := 0; dx < div; dx++ {
					i := row + (x*div+dx)*4
					r += int(src[i])
					g += int(src[i+1])
					b += int(src[i+2])
					a += int(src[i+3])
				}
			}
			o := (y*dstW + x) * 4
			dst[o] = byte(r / area)
			dst[o+1] = byte(g / area)
			dst[o+2] = byte(b / area)
			dst[o+3] = byte(a / area)
		}
	}
}
