package stream

import (
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"odr/internal/codec"
	"odr/internal/core"
	"odr/internal/frame"
	"odr/internal/obs"
	"odr/internal/realrt"
)

// Hub streams one game to many clients — the "render once, view many" shape
// of spectating and co-streaming. The shared game renders on demand under a
// single ODR pacer (inputs from any client cancel its delay, PriorityFrame
// style); every attached client gets its own encoder, its own Mul-Buf
// latest-wins slot and its own pacer, so a slow or slower-paced client never
// stalls the game or its peers — its obsolete frames are simply dropped
// before encoding, which is exactly ODR's on-demand principle applied per
// viewer.
type Hub struct {
	cfg  HubConfig
	dom  *realrt.Domain
	game *Game
	box  *core.InputBox
	pace *core.Pacer

	mu       sync.Mutex
	sessions map[uint32]*hubSession
	nextID   uint32

	rendered int64
	inputs   int64

	// Lifetime totals across detached sessions (atomics).
	served       int64
	totalSent    int64
	totalDropped int64
	evicted      int64 // sessions cut for blowing a read/write deadline

	stopOnce sync.Once
	stopping chan struct{}
	renderWG sync.WaitGroup

	// Drain sequencing: Drain closes draining; the renderer retires, every
	// session flushes its queued frame and seals with msgBye, then the hub
	// stops.
	drainOnce sync.Once
	draining  chan struct{}

	// evictCtr mirrors evicted into the metrics registry (nil-safe).
	evictCtr *obs.Counter

	// Observability (nil-safe; see HubConfig.Trace/Metrics). The hub-level
	// probe carries the shared renderer's energy under session="shared";
	// per-viewer probes live on each hubSession.
	tr    *obs.Tracer
	ins   obs.FrameInstruments
	probe *sessionProbe
}

// HubConfig configures a Hub.
type HubConfig struct {
	// Width and Height are the stream resolution (defaults 320×180).
	Width, Height int
	// TargetFPS paces the shared renderer (default 60).
	TargetFPS float64
	// Codec configures each client's encoder.
	Codec codec.Options
	// RenderCost optionally emulates a heavier GPU.
	RenderCost func() time.Duration
	// Trace, when non-nil, records the shared game's frame lifecycle and
	// per-viewer events against the hub's wall clock (the simulator's
	// vocabulary; export with Trace.WriteChromeTrace).
	Trace *obs.Tracer
	// Metrics, when non-nil, receives live hub telemetry under the
	// obs.FrameInstruments names.
	Metrics *obs.Registry
	// WriteTimeout, when > 0, bounds each per-session frame write; a viewer
	// that cannot drain its socket for this long is evicted. Latest-wins
	// dropping already shields the hub from slow viewers, so eviction only
	// fires when even single-frame writes stall. 0 disables it.
	WriteTimeout time.Duration
	// ReadTimeout, when > 0, bounds each read on a session's input path,
	// catching half-open viewer connections. 0 disables it — idle viewers
	// send nothing, so only set this when inputs (or keepalives) flow.
	ReadTimeout time.Duration
	// Logf, when non-nil, receives the final stats summary from Stop (and
	// nothing else); typically log.Printf. Headless runs set it so every
	// hub leaves evidence of what it did.
	Logf func(format string, args ...any)
}

func (c *HubConfig) applyDefaults() {
	if c.Width == 0 {
		c.Width = 320
	}
	if c.Height == 0 {
		c.Height = 180
	}
	if c.TargetFPS == 0 {
		c.TargetFPS = 60
	}
}

// hubSession is one attached client.
type hubSession struct {
	id        uint32
	hub       *Hub
	conn      net.Conn
	buf       *core.MultiBuffer
	enc       *codec.Encoder
	pace      *core.Pacer
	downscale int // 1 = full resolution; n = 1/n width and height
	w, h      int // this session's output dimensions

	// payload is the session's reusable frame-message buffer (header +
	// bitstream); encodeAndSendLoop is the only writer, so one buffer
	// keeps the send path allocation-free in steady state.
	payload []byte

	sent    int64
	dropped int64

	// wantKey is set by inputLoop on msgKeyReq and consumed by
	// encodeAndSendLoop before the next encode — the encoder itself is
	// owned exclusively by the encode loop.
	wantKey atomic.Bool

	// carried holds the input stamps of frames this session dropped
	// (latest-wins) before sending; the next frame it does send answers
	// them, so the issuing client still gets its MtP sample.
	carriedMu sync.Mutex
	carried   []frame.InputStamp

	// probe publishes this viewer's live QoE/energy series (nil-safe).
	probe *sessionProbe

	closeOnce sync.Once
}

// NewHub returns a hub ready to Run.
func NewHub(cfg HubConfig) *Hub {
	cfg.applyDefaults()
	dom := realrt.NewDomain()
	h := &Hub{
		cfg:      cfg,
		dom:      dom,
		game:     NewGame(cfg.Width, cfg.Height),
		box:      core.NewInputBox(dom),
		pace:     core.NewPacer(cfg.TargetFPS),
		sessions: make(map[uint32]*hubSession),
		stopping: make(chan struct{}),
		draining: make(chan struct{}),
		tr:       cfg.Trace,
		ins:      obs.NewFrameInstruments(cfg.Metrics),
		evictCtr: cfg.Metrics.Counter(obs.NameSessionsEvicted),
	}
	h.probe = newSessionProbe(cfg.Metrics, "shared")
	h.game.ExtraCost = cfg.RenderCost
	if h.tr != nil {
		h.pace.OnDelay = func(end, d time.Duration) {
			h.tr.Span(obs.TrackPacer, "pace", 0, end, end+d)
		}
	}
	return h
}

// Clients returns the number of attached clients.
func (h *Hub) Clients() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.sessions)
}

// Rendered returns the number of frames the shared game has rendered.
func (h *Hub) Rendered() int64 { return atomic.LoadInt64(&h.rendered) }

// Run renders the shared game until Stop; it drives all attached sessions.
func (h *Hub) Run() {
	h.renderWG.Add(1)
	defer h.renderWG.Done()
	w := realrt.NewWaiter(h.dom)
	var seq uint64
	for {
		select {
		case <-h.stopping:
			return
		case <-h.draining:
			return
		default:
		}
		start := h.dom.Now()
		stamps := h.box.ConsumePending()
		for range stamps {
			h.game.OnInput()
		}
		pix := make([]byte, h.game.FrameBytes())
		h.game.Render(pix)
		seq++
		f := &frame.Frame{Seq: seq, Pixels: pix, RenderStart: start, RenderEnd: h.dom.Now()}
		core.Tag(f, stamps)
		atomic.AddInt64(&h.rendered, 1)
		h.tr.Span(obs.TrackRender, "render", f.Seq, f.RenderStart, f.RenderEnd)
		h.ins.Rendered.Inc()
		h.ins.Render.ObserveDuration(f.RenderEnd - f.RenderStart)
		h.probe.onRender(f.RenderEnd - f.RenderStart)
		h.probe.maybeFlush(h.dom.Now())
		if f.Priority {
			h.tr.Instant(obs.TrackRender, "priority-frame", f.Seq, f.RenderStart)
			h.ins.Priority.Inc()
		}

		// Broadcast: latest-wins per client; a slow client's un-encoded
		// frame is obsolete the moment a newer one exists.
		h.mu.Lock()
		for _, s := range h.sessions {
			dropped := s.buf.PutPriority(f)
			if len(dropped) > 0 {
				atomic.AddInt64(&s.dropped, int64(len(dropped)))
				h.tr.Instant(obs.TrackProxy, "mulbuf-drop", f.Seq, h.dom.Now())
				h.ins.Dropped.Add(int64(len(dropped)))
				s.carriedMu.Lock()
				for _, d := range dropped {
					s.carried = append(s.carried, d.Inputs...)
				}
				s.carriedMu.Unlock()
			}
		}
		h.mu.Unlock()

		// ODR pacing with PriorityFrame: an input arrival cancels the
		// render delay.
		if f.Priority {
			h.pace.SkipFrame()
			continue
		}
		if d := h.pace.PaceAfterObserved(start, h.dom.Now()); d > 0 {
			h.box.DelayInterruptible(w, d)
		}
	}
}

// Stop shuts down the hub and detaches every client. If HubConfig.Logf is
// set, Stop logs a final stats summary once the renderer has quiesced.
func (h *Hub) Stop() {
	h.stopOnce.Do(func() {
		close(h.stopping)
		// Wake the renderer if it is inside DelayInterruptible.
		h.box.OnInput(0, 0)
		h.mu.Lock()
		sessions := make([]*hubSession, 0, len(h.sessions))
		for _, s := range h.sessions {
			sessions = append(sessions, s)
		}
		h.mu.Unlock()
		for _, s := range sessions {
			s.close()
		}
		h.renderWG.Wait()
		if h.cfg.Logf != nil {
			snap := h.Snapshot()
			h.cfg.Logf("hub stopped: rendered=%v inputs=%v sessions_served=%v sent=%v dropped=%v",
				snap["rendered"], snap["inputs"], snap["sessions_served"], snap["sent"], snap["dropped"])
		}
	})
}

// Drain ends the hub gracefully: the renderer retires, every attached
// session flushes the frame it already has queued and receives an orderly
// msgBye before its connection closes. Drain returns nil once all sessions
// have detached, or ErrDrainTimeout if some were still attached when the
// timeout passed; either way the hub is stopped when it returns.
func (h *Hub) Drain(timeout time.Duration) error {
	h.drainOnce.Do(func() { close(h.draining) })
	// Wake the renderer out of a pacing delay so it observes draining.
	h.box.OnInput(0, 0)
	h.renderWG.Wait()
	deadline := time.Now().Add(timeout)
	for {
		// Close session buffers (not conns): each encodeAndSendLoop drains
		// what is buffered, writes msgBye, then tears the session down.
		// Re-closing every poll round covers sessions that raced Attach.
		h.mu.Lock()
		sessions := make([]*hubSession, 0, len(h.sessions))
		for _, s := range h.sessions {
			sessions = append(sessions, s)
		}
		h.mu.Unlock()
		if len(sessions) == 0 {
			h.Stop()
			return nil
		}
		for _, s := range sessions {
			s.buf.Close()
		}
		if time.Now().After(deadline) {
			h.Stop()
			return ErrDrainTimeout
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func (h *Hub) drainRequested() bool {
	select {
	case <-h.draining:
		return true
	default:
		return false
	}
}

// Evicted returns how many sessions were cut for blowing a deadline.
func (h *Hub) Evicted() int64 { return atomic.LoadInt64(&h.evicted) }

// evictSession records one deadline eviction.
func (h *Hub) evictSession() {
	atomic.AddInt64(&h.evicted, 1)
	h.evictCtr.Inc()
	h.tr.Instant(obs.TrackNetwork, "evict", 0, h.dom.Now())
}

// Snapshot reports the hub's live state for /debug/odr: lifetime frame and
// input counters, totals across detached sessions, and the per-session
// counters of every client still attached. Safe to call concurrently with
// Run.
func (h *Hub) Snapshot() map[string]any {
	h.mu.Lock()
	live := make([]map[string]any, 0, len(h.sessions))
	var liveSent, liveDropped int64
	for _, s := range h.sessions {
		sent := atomic.LoadInt64(&s.sent)
		dropped := atomic.LoadInt64(&s.dropped)
		liveSent += sent
		liveDropped += dropped
		live = append(live, map[string]any{
			"id":        s.id,
			"sent":      sent,
			"dropped":   dropped,
			"downscale": s.downscale,
			"width":     s.w,
			"height":    s.h,
		})
	}
	h.mu.Unlock()
	served := atomic.LoadInt64(&h.served)
	return map[string]any{
		"target_fps":      h.cfg.TargetFPS,
		"rendered":        atomic.LoadInt64(&h.rendered),
		"inputs":          atomic.LoadInt64(&h.inputs),
		"sessions_served": served + int64(len(live)),
		"sent":            atomic.LoadInt64(&h.totalSent) + liveSent,
		"dropped":         atomic.LoadInt64(&h.totalDropped) + liveDropped,
		"evicted":         atomic.LoadInt64(&h.evicted),
		"clients":         live,
	}
}

// SessionStats reports one attached client's counters.
type SessionStats struct {
	Sent    int64
	Dropped int64
}

// AttachOptions configures one viewer session.
type AttachOptions struct {
	// ClientFPS paces this viewer (0 = the hub's full rate).
	ClientFPS float64
	// Downscale divides the stream resolution for this viewer (0 or 1 =
	// full resolution; 2 = quarter-area thumbnail, and so on). The hub
	// renders once at full resolution; the session box-filters before
	// encoding, so thumbnails cost a fraction of the encode work and
	// bandwidth.
	Downscale int
	// Detach is invoked with the session's counters when it ends.
	Detach func(SessionStats)
}

// Attach adds a client connection to the hub with its own encoder and
// pacing target (0 = the hub's rate). It returns immediately; the session
// runs until the connection fails or the hub stops. detach is invoked when
// the session ends.
func (h *Hub) Attach(conn net.Conn, clientFPS float64, detach func(SessionStats)) {
	h.AttachWithOptions(conn, AttachOptions{ClientFPS: clientFPS, Detach: detach})
}

// AttachWithOptions is Attach with per-viewer resolution control.
func (h *Hub) AttachWithOptions(conn net.Conn, opts AttachOptions) {
	select {
	case <-h.stopping:
		// Refused: the hub is gone; end the session immediately.
		conn.Close()
		if opts.Detach != nil {
			opts.Detach(SessionStats{})
		}
		return
	case <-h.draining:
		conn.Close()
		if opts.Detach != nil {
			opts.Detach(SessionStats{})
		}
		return
	default:
	}
	div := opts.Downscale
	if div < 1 {
		div = 1
	}
	w := h.cfg.Width / div
	hh := h.cfg.Height / div
	if w < 1 {
		w = 1
	}
	if hh < 1 {
		hh = 1
	}
	detach := opts.Detach
	h.mu.Lock()
	h.nextID++
	s := &hubSession{
		id:        h.nextID,
		hub:       h,
		conn:      conn,
		buf:       core.NewMultiBuffer(h.dom),
		enc:       codec.NewEncoder(w, hh, h.cfg.Codec),
		pace:      core.NewPacer(opts.ClientFPS),
		downscale: div,
		w:         w,
		h:         hh,
		payload:   make([]byte, frameHeaderLen, frameHeaderLen+w*hh/2),
	}
	s.probe = newSessionProbe(h.cfg.Metrics, "h"+strconv.FormatUint(uint64(s.id), 10))
	recordSessionStart(h.cfg.Metrics, "Hub", h.cfg.Codec)
	h.sessions[s.id] = s
	h.mu.Unlock()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); s.encodeAndSendLoop() }()
	go func() { defer wg.Done(); s.inputLoop() }()
	go func() {
		wg.Wait()
		h.mu.Lock()
		delete(h.sessions, s.id)
		h.mu.Unlock()
		s.probe.close(h.dom.Now(), true)
		sent := atomic.LoadInt64(&s.sent)
		droppedN := atomic.LoadInt64(&s.dropped)
		atomic.AddInt64(&h.served, 1)
		atomic.AddInt64(&h.totalSent, sent)
		atomic.AddInt64(&h.totalDropped, droppedN)
		if detach != nil {
			detach(SessionStats{Sent: sent, Dropped: droppedN})
		}
	}()
}

// close tears the session down.
func (s *hubSession) close() {
	s.closeOnce.Do(func() {
		s.buf.Close()
		s.conn.Close()
	})
}

// encodeAndSendLoop encodes the latest shared frame for this client and
// transmits it, applying the client's own pacing.
func (s *hubSession) encodeAndSendLoop() {
	defer s.close()
	w := realrt.NewWaiter(s.hub.dom)
	scratch := make([]byte, s.w*s.h*4)
	var lastEncoded uint64 // parent-chain tag: seq of the last encoded frame
	for {
		f := s.buf.Acquire(w)
		if f == nil {
			// Buffer closed: a hub Drain flushes ends with an orderly bye.
			if s.hub.drainRequested() {
				if s.hub.cfg.WriteTimeout > 0 {
					s.conn.SetWriteDeadline(time.Now().Add(s.hub.cfg.WriteTimeout))
				}
				writeMsg(s.conn, msgBye, nil)
			}
			return
		}
		start := s.hub.dom.Now()
		if s.downscale > 1 {
			downsample(f.Pixels, s.hub.cfg.Width, scratch, s.w, s.h, s.downscale)
		} else {
			copy(scratch, f.Pixels)
		}
		if s.wantKey.Swap(false) {
			s.enc.ForceKeyframe()
		}
		payload, err := s.enc.EncodeAppend(s.payload[:frameHeaderLen], scratch)
		encEnd := s.hub.dom.Now()
		if err != nil {
			s.buf.Release()
			return
		}
		s.payload = payload
		s.hub.tr.Span(obs.TrackProxy, "encode", f.Seq, start, encEnd)
		s.hub.ins.Encoded.Inc()
		s.hub.ins.Encode.ObserveDuration(encEnd - start)
		s.probe.onEncode(encEnd - start)
		if tiles, dirty := s.enc.TileStats(); tiles > 0 {
			s.hub.ins.TilesCoded.Add(int64(tiles))
			s.hub.ins.TilesDirty.Add(int64(dirty))
			s.hub.ins.DirtyRatio.Set(float64(dirty) / float64(tiles))
			s.probe.onTiles(tiles, dirty)
			for _, ns := range s.enc.TileNanos() {
				s.hub.ins.TileEncode.Observe(ns / 1e3)
			}
		}
		// Only the stamp belonging to this session is echoed: MtP is
		// measured on the issuing client's clock. Stamps carried from
		// dropped older frames are answered by this frame too.
		s.carriedMu.Lock()
		stamps := append(s.carried, f.Inputs...)
		s.carried = nil
		s.carriedMu.Unlock()
		var inputID uint64
		var inputNanos int64
		for _, st := range stamps {
			if sessionOf(st.ID) == s.id {
				inputID = uint64(st.ID)
				inputNanos = int64(st.Issued)
				break
			}
		}
		bs := payload[frameHeaderLen:]
		var parent uint64
		if !codec.IsKeyframe(bs) {
			parent = lastEncoded
		}
		lastEncoded = f.Seq
		putFrameHeader(payload, frameMeta{
			seq:         f.Seq,
			parentSeq:   parent,
			inputID:     inputID,
			inputNanos:  inputNanos,
			renderNanos: int64(f.RenderEnd),
		}, bs)
		txStart := s.hub.dom.Now()
		if s.hub.cfg.WriteTimeout > 0 {
			s.conn.SetWriteDeadline(time.Now().Add(s.hub.cfg.WriteTimeout))
		}
		err = writeMsg(s.conn, msgFrame, payload)
		s.buf.Release()
		if err != nil {
			if isTimeoutErr(err) {
				s.hub.evictSession()
			}
			return
		}
		atomic.AddInt64(&s.sent, 1)
		txEnd := s.hub.dom.Now()
		s.hub.tr.Span(obs.TrackNetwork, "tx", f.Seq, txStart, txEnd)
		s.hub.ins.Displayed.Inc()
		s.hub.ins.Tx.ObserveDuration(txEnd - txStart)
		var mtpUs int64
		if inputID != 0 {
			mtpUs = s.probe.mtpEstimate(txEnd)
			if mtpUs > 0 {
				s.hub.ins.MtP.Observe(mtpUs)
			}
		}
		s.probe.onSend(txEnd, len(payload), txEnd-txStart, mtpUs)
		if !f.Priority {
			if d := s.pace.PaceAfterObserved(start, s.hub.dom.Now()); d > 0 {
				w.Sleep(d)
			}
		}
	}
}

// inputLoop forwards this client's inputs into the shared game.
func (s *hubSession) inputLoop() {
	defer s.close()
	var buf []byte
	for {
		if s.hub.cfg.ReadTimeout > 0 {
			s.conn.SetReadDeadline(time.Now().Add(s.hub.cfg.ReadTimeout))
		}
		typ, payload, err := readMsg(s.conn, buf)
		if err != nil {
			if isTimeoutErr(err) {
				s.hub.evictSession()
			}
			return
		}
		buf = payload[:cap(payload)]
		switch typ {
		case msgInput:
			id, nanos, err := parseInputMsg(payload)
			if err != nil {
				return
			}
			atomic.AddInt64(&s.hub.inputs, 1)
			s.hub.tr.Instant(obs.TrackInput, "input", id, s.hub.dom.Now())
			s.hub.ins.Inputs.Inc()
			s.probe.onInput(s.hub.dom.Now())
			s.hub.box.OnInput(packInput(s.id, id), time.Duration(nanos))
		case msgKeyReq:
			// Each session owns its encoder — but the encode loop owns it
			// exclusively, so only flag the request here.
			s.wantKey.Store(true)
		case msgBye:
			return
		}
	}
}

// packInput embeds the session id in the high bits of a client-local input
// id so the responding frame is attributed to the right client.
func packInput(session uint32, local uint64) frame.InputID {
	return frame.InputID(uint64(session)<<40 | (local & (1<<40 - 1)))
}

// sessionOf extracts the session id from a packed input id.
func sessionOf(id frame.InputID) uint32 {
	return uint32(uint64(id) >> 40)
}

// downsample box-filters src (srcW wide RGBA) into dst (dstW×dstH RGBA) with
// the given integer divisor.
func downsample(src []byte, srcW int, dst []byte, dstW, dstH, div int) {
	area := div * div
	for y := 0; y < dstH; y++ {
		for x := 0; x < dstW; x++ {
			var r, g, b, a int
			for dy := 0; dy < div; dy++ {
				row := ((y*div + dy) * srcW) * 4
				for dx := 0; dx < div; dx++ {
					i := row + (x*div+dx)*4
					r += int(src[i])
					g += int(src[i+1])
					b += int(src[i+2])
					a += int(src[i+3])
				}
			}
			o := (y*dstW + x) * 4
			dst[o] = byte(r / area)
			dst[o+1] = byte(g / area)
			dst[o+2] = byte(b / area)
			dst[o+3] = byte(a / area)
		}
	}
}
