package stream

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReadMsg feeds arbitrary byte streams to the wire-framing reader. The
// invariants under attack: no panic, allocation bounded by the bytes that
// actually arrived (a forged length prefix must not buy a 64 MiB slice), and
// every well-formed message round-trips.
func FuzzReadMsg(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{msgFrame, 0, 0, 0, 0})
	f.Add([]byte{msgInput, 16, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add([]byte{msgBye, 0xFF, 0xFF, 0xFF, 0xFF}) // forged 4 GiB length
	f.Add([]byte{msgKeyReq, 0, 0, 0, 0x04})       // 64 MiB + ε: over the limit
	if m := frameMsg(frameMeta{seq: 1, inputID: 2, inputNanos: 3, renderNanos: 4}, []byte{0xD3, 0}); true {
		stream := append([]byte{msgFrame, byte(len(m)), 0, 0, 0}, m...)
		f.Add(stream)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			typ, payload, err := readMsg(r, nil)
			if err != nil {
				// Truncated or oversized input must error, never hang or
				// panic. EOF family and the size-limit error are the only
				// legitimate shapes here.
				return
			}
			// The payload must be funded by bytes that actually arrived.
			if len(payload) > len(data) {
				t.Fatalf("payload %d bytes from %d input bytes", len(payload), len(data))
			}
			if cap(payload) > 2*len(data)+allocChunk {
				t.Fatalf("readMsg over-allocated: cap %d for %d input bytes", cap(payload), len(data))
			}
			switch typ {
			case msgFrame:
				// Frame parsing must not panic either; checksum errors are
				// the expected rejection path for corrupt payloads.
				if m, bs, err := parseFrameMsg(payload); err == nil {
					// A payload that parses must re-encode identically.
					if !bytes.Equal(frameMsg(m, bs), payload) {
						t.Fatal("frame message did not round-trip")
					}
				} else if !errors.Is(err, errFrameChecksum) && err.Error() != "stream: short frame message" {
					t.Fatalf("unexpected parse error shape: %v", err)
				}
			case msgInput:
				_, _, _ = parseInputMsg(payload)
			}
		}
	})
}

// FuzzFrameRoundTrip fuzzes the frame header encode/decode pair directly:
// any metadata and bitstream must survive a round-trip, and any single-byte
// corruption of the bitstream must be caught by the CRC.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(0), uint64(7), int64(100), int64(200), []byte{0xD3, 0, 1})
	f.Add(uint64(9), uint64(8), uint64(0), int64(-1), int64(0), []byte{})
	f.Fuzz(func(t *testing.T, seq, parent, inputID uint64, inNanos, rNanos int64, bs []byte) {
		in := frameMeta{seq: seq, parentSeq: parent, inputID: inputID, inputNanos: inNanos, renderNanos: rNanos}
		msg := frameMsg(in, bs)
		out, gotBS, err := parseFrameMsg(msg)
		if err != nil {
			t.Fatalf("round-trip rejected: %v", err)
		}
		if out != in || !bytes.Equal(gotBS, bs) {
			t.Fatalf("round-trip mismatch: %+v vs %+v", out, in)
		}
		if len(bs) > 0 {
			msg[frameHeaderLen] ^= 0x01
			if _, _, err := parseFrameMsg(msg); !errors.Is(err, errFrameChecksum) {
				t.Fatalf("bitstream corruption not caught: %v", err)
			}
		}
	})
}

// TestReadMsgShortWrites drives readMsg through a reader that delivers one
// byte at a time — framing must be byte-accurate, not read-boundary-lucky.
func TestReadMsgShortWrites(t *testing.T) {
	msg := frameMsg(frameMeta{seq: 3, parentSeq: 2}, []byte{1, 2, 3, 4})
	var wire bytes.Buffer
	if err := writeMsg(&wire, msgFrame, msg); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readMsg(&oneByteReader{data: wire.Bytes()}, nil)
	if err != nil || typ != msgFrame || !bytes.Equal(payload, msg) {
		t.Fatalf("one-byte-at-a-time read: typ=%d err=%v", typ, err)
	}
}

// oneByteReader delivers at most one byte per Read.
type oneByteReader struct{ data []byte }

func (r *oneByteReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	p[0] = r.data[0]
	r.data = r.data[1:]
	return 1, nil
}
