package stream

import (
	"net"
	"sync"
	"testing"
	"time"

	"odr/internal/testutil"
)

func startHub(t *testing.T, cfg HubConfig) (*Hub, func()) {
	t.Helper()
	testutil.VerifyNoLeaks(t)
	h := NewHub(cfg)
	go h.Run()
	return h, h.Stop
}

func attachClient(t *testing.T, h *Hub, clientFPS float64) (*Client, chan SessionStats, func()) {
	t.Helper()
	sc, cc := net.Pipe()
	stats := make(chan SessionStats, 1)
	h.Attach(sc, clientFPS, func(s SessionStats) { stats <- s })
	cli := NewClient(cc)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := cli.Run(); err != nil {
			t.Errorf("client: %v", err)
		}
	}()
	cleanup := func() {
		cli.Stop()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("hub client did not stop")
		}
	}
	return cli, stats, cleanup
}

func TestHubStreamsToMultipleClients(t *testing.T) {
	h, stop := startHub(t, HubConfig{Width: 48, Height: 27, TargetFPS: 90})
	defer stop()
	a, _, cleanA := attachClient(t, h, 0)
	b, _, cleanB := attachClient(t, h, 0)
	defer cleanA()
	defer cleanB()
	waitFrames(t, a, 30, 10*time.Second)
	waitFrames(t, b, 30, 10*time.Second)
	if h.Clients() != 2 {
		t.Fatalf("Clients = %d", h.Clients())
	}
	if a.Report().Brightness == 0 || b.Report().Brightness == 0 {
		t.Fatal("clients did not decode content")
	}
}

func TestHubLateJoinerDecodesImmediately(t *testing.T) {
	// A mid-stream joiner's first frame is a keyframe spliced from shared
	// lane-encoder state — no resync dance needed.
	h, stop := startHub(t, HubConfig{Width: 48, Height: 27, TargetFPS: 90})
	defer stop()
	a, _, cleanA := attachClient(t, h, 0)
	defer cleanA()
	waitFrames(t, a, 20, 10*time.Second)
	b, _, cleanB := attachClient(t, h, 0)
	defer cleanB()
	waitFrames(t, b, 10, 10*time.Second)
	if b.Report().Resyncs != 0 {
		t.Fatalf("late joiner needed %d resyncs", b.Report().Resyncs)
	}
}

func TestHubSlowClientDoesNotStallFastOne(t *testing.T) {
	h, stop := startHub(t, HubConfig{Width: 48, Height: 27, TargetFPS: 120})
	defer stop()
	fast, _, cleanFast := attachClient(t, h, 0)
	defer cleanFast()
	// The slow client paces itself at 10 FPS: the hub must keep feeding the
	// fast one and drop the slow one's obsolete frames.
	slow, slowStats, cleanSlow := attachClient(t, h, 10)
	waitFrames(t, fast, 60, 15*time.Second)
	fastRep := fast.Report()
	slowRep := slow.Report()
	if fastRep.FPS < 40 {
		t.Fatalf("fast client at %.1f FPS: stalled by slow peer", fastRep.FPS)
	}
	if slowRep.Frames >= fastRep.Frames/2 {
		t.Fatalf("slow client got %d of %d frames: pacing not applied", slowRep.Frames, fastRep.Frames)
	}
	cleanSlow()
	select {
	case st := <-slowStats:
		if st.Dropped == 0 {
			t.Fatal("slow client dropped nothing: latest-wins not engaged")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("detach callback never fired")
	}
}

func TestHubInputVisibleToAllClientsButAttributedToSender(t *testing.T) {
	h, stop := startHub(t, HubConfig{Width: 48, Height: 27, TargetFPS: 60})
	defer stop()
	a, _, cleanA := attachClient(t, h, 0)
	b, _, cleanB := attachClient(t, h, 0)
	defer cleanA()
	defer cleanB()
	waitFrames(t, a, 10, 10*time.Second)
	waitFrames(t, b, 10, 10*time.Second)

	baseB := b.Report().Brightness
	if _, err := a.SendInput(); err != nil {
		t.Fatal(err)
	}
	// The input's flash must reach BOTH clients (shared world state)...
	deadline := time.Now().Add(5 * time.Second)
	var peakB float64
	for time.Now().Before(deadline) {
		if br := b.Report().Brightness; br > peakB {
			peakB = br
		}
		if peakB > baseB+15 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if peakB <= baseB+10 {
		t.Fatalf("input flash did not reach the other client: base %.1f peak %.1f", baseB, peakB)
	}
	// ...but the MtP sample must be recorded only by the sender.
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && a.Report().LatencySamples == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if a.Report().LatencySamples == 0 {
		t.Fatal("sender never got its latency sample")
	}
	if b.Report().LatencySamples != 0 {
		t.Fatalf("non-sender recorded %d latency samples", b.Report().LatencySamples)
	}
}

func TestHubStopDetachesEverything(t *testing.T) {
	h, _ := startHub(t, HubConfig{Width: 32, Height: 18})
	a, stats, cleanA := attachClient(t, h, 0)
	waitFrames(t, a, 5, 10*time.Second)
	h.Stop()
	select {
	case <-stats:
	case <-time.After(10 * time.Second):
		t.Fatal("session not detached on hub stop")
	}
	if h.Clients() != 0 {
		t.Fatalf("Clients = %d after Stop", h.Clients())
	}
	cleanA()
}

func TestHubRenderPacing(t *testing.T) {
	h, stop := startHub(t, HubConfig{Width: 32, Height: 18, TargetFPS: 30})
	defer stop()
	a, _, cleanA := attachClient(t, h, 0)
	defer cleanA()
	waitFrames(t, a, 20, 15*time.Second)
	rep := a.Report()
	if rep.FPS > 40 {
		t.Fatalf("hub paced at %.1f FPS, want <= ~30", rep.FPS)
	}
}

func TestPackInputRoundTrip(t *testing.T) {
	// The boundary sessions pin the 2^24 truncation bug: the old 40-bit
	// layout shifted a uint32 session id by 40, so ids >= 1<<24 overflowed
	// uint64 and sessionOf misattributed the input to the wrong viewer.
	for _, s := range []uint32{1, 7, 1 << 20, 1 << 24, 1<<24 + 1, ^uint32(0)} {
		for _, l := range []uint64{1, 99, 1<<32 - 1} {
			id := packInput(s, l)
			if sessionOf(id) != s {
				t.Fatalf("session %d/local %d: got session %d", s, l, sessionOf(id))
			}
			if got := uint64(id) & 0xFFFFFFFF; got != l {
				t.Fatalf("session %d/local %d: local round-trips as %d", s, l, got)
			}
		}
	}
	// Locals above 32 bits are masked, never bleed into the session bits.
	if got := sessionOf(packInput(3, 1<<40|5)); got != 3 {
		t.Fatalf("masked local: session = %d, want 3", got)
	}
}

func TestHubConcurrentAttachDetach(t *testing.T) {
	h, stop := startHub(t, HubConfig{Width: 32, Height: 18, TargetFPS: 120})
	defer stop()
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, _, clean := attachClient(t, h, 0)
			waitFrames(t, cli, 5, 10*time.Second)
			clean()
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent attach/detach deadlocked")
	}
}

func TestHubDownscaledViewer(t *testing.T) {
	h, stop := startHub(t, HubConfig{Width: 64, Height: 36, TargetFPS: 90})
	defer stop()
	full, _, cleanFull := attachClient(t, h, 0)
	defer cleanFull()

	sc, cc := net.Pipe()
	h.AttachWithOptions(sc, AttachOptions{ClientFPS: 30, Downscale: 2})
	thumb := NewClient(cc)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := thumb.Run(); err != nil {
			t.Errorf("thumb client: %v", err)
		}
	}()
	defer func() {
		thumb.Stop()
		<-done
	}()

	waitFrames(t, full, 20, 10*time.Second)
	waitFrames(t, thumb, 5, 10*time.Second)
	var thumbPix, fullPix int
	var mu sync.Mutex
	thumb.OnFrame(func(_ uint64, pix []byte) { mu.Lock(); thumbPix = len(pix); mu.Unlock() })
	full.OnFrame(func(_ uint64, pix []byte) { mu.Lock(); fullPix = len(pix); mu.Unlock() })
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		tp, fp := thumbPix, fullPix
		mu.Unlock()
		if tp > 0 && fp > 0 {
			if tp*4 != fp {
				t.Fatalf("thumbnail %d bytes vs full %d: want quarter area", tp, fp)
			}
			// Content must still be real (not black).
			if thumb.Report().Brightness == 0 {
				t.Fatal("downscaled frames are black")
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("never observed both frame sizes")
}

func TestDownsampleAverages(t *testing.T) {
	// 4x4 source of alternating black/white 2x2 blocks downsampled by 2
	// must yield the block colors exactly.
	src := make([]byte, 4*4*4)
	set := func(x, y int, v byte) {
		i := (y*4 + x) * 4
		src[i], src[i+1], src[i+2], src[i+3] = v, v, v, 255
	}
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			v := byte(0)
			if (x/2+y/2)%2 == 0 {
				v = 200
			}
			set(x, y, v)
		}
	}
	dst := make([]byte, 2*2*4)
	downsample(src, 4, dst, 2, 2, 2)
	want := []byte{200, 0, 0, 200}
	for i, w := range want {
		if dst[i*4] != w {
			t.Fatalf("cell %d = %d, want %d", i, dst[i*4], w)
		}
	}
}
