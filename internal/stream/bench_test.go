package stream

import (
	"net"
	"testing"
	"time"
)

// BenchmarkStreamEndToEnd measures full-stack frame throughput (render +
// encode + pipe + decode) for one unregulated session at a small resolution.
func BenchmarkStreamEndToEnd(b *testing.B) {
	sc, cc := net.Pipe()
	srv := NewServer(sc, ServerConfig{Width: 96, Height: 54, Policy: ODRRegulation, TargetFPS: 0})
	cli := NewClient(cc)
	go func() { _ = srv.Run() }()
	go func() { _ = cli.Run() }()
	b.SetBytes(int64(96 * 54 * 4))
	b.ResetTimer()
	start := cli.Report().Frames
	for cli.Report().Frames < start+int64(b.N) {
		time.Sleep(time.Millisecond)
	}
	b.StopTimer()
	rep := cli.Report()
	if rep.FPS > 0 {
		b.ReportMetric(rep.FPS, "frames/s")
	}
	cli.Stop()
	srv.Stop()
}

// BenchmarkHubBroadcast measures hub throughput with four concurrent
// viewers sharing one render loop.
func BenchmarkHubBroadcast(b *testing.B) {
	h := NewHub(HubConfig{Width: 96, Height: 54, TargetFPS: 0})
	go h.Run()
	defer h.Stop()
	const viewers = 4
	clients := make([]*Client, viewers)
	for i := range clients {
		sc, cc := net.Pipe()
		h.Attach(sc, 0, nil)
		clients[i] = NewClient(cc)
		c := clients[i]
		go func() { _ = c.Run() }()
		defer c.Stop()
	}
	b.ResetTimer()
	target := int64(b.N)
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		done := true
		for _, c := range clients {
			if c.Report().Frames < target {
				done = false
				break
			}
		}
		if done {
			break
		}
		time.Sleep(time.Millisecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(h.Rendered()), "renders")
}
