package stream

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"odr/internal/codec"
)

// TestClientResyncsMidStreamJoin verifies the keyframe-recovery protocol: a
// client that joins after the stream started (first frame it sees is a
// delta) requests a keyframe and recovers instead of failing.
func TestClientResyncsMidStreamJoin(t *testing.T) {
	sc, cc := net.Pipe()
	defer sc.Close()

	// Hand-rolled "server": pre-encode three frames (key, delta, delta),
	// send only the deltas first, then answer the key request with a fresh
	// keyframe.
	srv := NewServer(sc, ServerConfig{Width: 16, Height: 9}) // for its encoder/game only
	game := srv.game
	enc := srv.enc
	pix := make([]byte, game.FrameBytes())
	encodeNext := func() []byte {
		game.Render(pix)
		bs, err := enc.Encode(pix)
		if err != nil {
			t.Fatal(err)
		}
		return bs
	}
	_ = encodeNext() // keyframe the client never sees
	delta1 := encodeNext()
	delta2 := encodeNext()

	cli := NewClient(cc)
	cliDone := make(chan error, 1)
	go func() { cliDone <- cli.Run() }()

	// A real server reads inputs concurrently with writing frames; the mock
	// must too, or the synchronous pipe deadlocks.
	keyReqs := make(chan byte, 16)
	go func() {
		for {
			typ, _, err := readMsg(sc, nil)
			if err != nil {
				close(keyReqs)
				return
			}
			keyReqs <- typ
		}
	}()
	serverDone := make(chan error, 1)
	go func() {
		// Send the two deltas the client cannot decode.
		for seq, bs := range map[uint64][]byte{2: delta1, 3: delta2} {
			if err := writeMsg(sc, msgFrame, frameMsg(seq, 0, 0, 0, bs)); err != nil {
				serverDone <- err
				return
			}
		}
		// Expect a keyframe request.
		typ, ok := <-keyReqs
		if !ok || typ != msgKeyReq {
			serverDone <- errors.New("expected msgKeyReq")
			return
		}
		enc.ForceKeyframe()
		key := encodeNext()
		if err := writeMsg(sc, msgFrame, frameMsg(4, 0, 0, 0, key)); err != nil {
			serverDone <- err
			return
		}
		serverDone <- writeMsg(sc, msgBye, nil)
	}()

	select {
	case err := <-serverDone:
		if err != nil {
			t.Fatalf("mock server: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("mock server stuck")
	}
	select {
	case err := <-cliDone:
		if err != nil {
			t.Fatalf("client: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client stuck")
	}
	rep := cli.Report()
	if rep.Resyncs == 0 {
		t.Fatal("client never requested a resync")
	}
	if rep.Frames != 1 {
		t.Fatalf("client decoded %d frames, want exactly the keyframe", rep.Frames)
	}
}

// TestServerHandlesKeyReq verifies the live server responds to a keyframe
// request with a keyframe on the wire.
func TestServerHandlesKeyReq(t *testing.T) {
	srv, cli, cleanup := startPair(t, ServerConfig{
		Width: 32, Height: 18, Policy: ODRRegulation, TargetFPS: 60,
		Codec: codec.Options{QuantShift: 2, KeyInterval: 1 << 20},
	})
	defer cleanup()
	waitFrames(t, cli, 10, 10*time.Second)
	if err := cli.sendKeyReq(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Stats().Snapshot().KeyReqs > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("server never observed the keyframe request")
}

// flakyConn fails writes after a byte budget, simulating a mid-stream
// network fault.
type flakyConn struct {
	net.Conn
	mu     sync.Mutex
	budget int
}

func (f *flakyConn) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.budget <= 0 {
		return 0, errors.New("injected network fault")
	}
	f.budget -= len(p)
	return f.Conn.Write(p)
}

// TestServerSurvivesWriteFault: a mid-stream write fault must terminate
// Run with the injected error (not a hang, not a panic).
func TestServerSurvivesWriteFault(t *testing.T) {
	sc, cc := net.Pipe()
	srv := NewServer(&flakyConn{Conn: sc, budget: 256 << 10}, ServerConfig{
		Width: 64, Height: 36, Policy: ODRRegulation, TargetFPS: 240,
	})
	cli := NewClient(cc)
	go func() { _ = cli.Run() }()
	defer cli.Stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Run() }()
	select {
	case err := <-errCh:
		if err == nil || err.Error() == "" {
			t.Fatalf("expected the injected fault, got %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server hung on write fault")
	}
}

// TestServerRejectsGarbageMessage: unknown message types terminate the
// session cleanly.
func TestServerRejectsGarbageMessage(t *testing.T) {
	sc, cc := net.Pipe()
	srv := NewServer(sc, ServerConfig{Width: 16, Height: 9, Policy: ODRRegulation, TargetFPS: 60})
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Run() }()
	// Drain frames so the server isn't blocked writing.
	go func() { _, _ = io.Copy(io.Discard, cc) }()
	if err := writeMsg(cc, 0xEE, []byte("junk")); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("expected protocol error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server hung on garbage message")
	}
}

// TestClientRejectsCorruptFrame: a corrupt bitstream terminates the client
// with an error rather than a panic.
func TestClientRejectsCorruptFrame(t *testing.T) {
	sc, cc := net.Pipe()
	defer sc.Close()
	cli := NewClient(cc)
	done := make(chan error, 1)
	go func() { done <- cli.Run() }()
	junk := make([]byte, frameHeaderLen+16)
	junk[frameHeaderLen] = 0xFF // bad codec magic
	if err := writeMsg(sc, msgFrame, frameMsg(1, 0, 0, 0, junk[frameHeaderLen:])); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected decode error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client hung on corrupt frame")
	}
}

// TestClientRejectsOversizedMessage: the length prefix is bounded.
func TestClientRejectsOversizedMessage(t *testing.T) {
	sc, cc := net.Pipe()
	defer sc.Close()
	cli := NewClient(cc)
	done := make(chan error, 1)
	go func() { done <- cli.Run() }()
	var hdr [5]byte
	hdr[0] = msgFrame
	binary.LittleEndian.PutUint32(hdr[1:], uint32(maxPayload+1))
	if _, err := sc.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected size-limit error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client hung on oversized message")
	}
}

// TestProtoRoundTrip covers the wire encoding helpers directly.
func TestProtoRoundTrip(t *testing.T) {
	payload := frameMsg(7, 3, 1234, 5678, []byte{1, 2, 3})
	seq, in, inNanos, rNanos, bs, err := parseFrameMsg(payload)
	if err != nil || seq != 7 || in != 3 || inNanos != 1234 || rNanos != 5678 || len(bs) != 3 {
		t.Fatalf("frame round trip: %v %v %v %v %v %v", seq, in, inNanos, rNanos, bs, err)
	}
	if _, _, _, _, _, err := parseFrameMsg(payload[:10]); err == nil {
		t.Fatal("short frame message accepted")
	}
	ip := inputMsg(9, 42)
	id, nanos, err := parseInputMsg(ip)
	if err != nil || id != 9 || nanos != 42 {
		t.Fatalf("input round trip: %v %v %v", id, nanos, err)
	}
	if _, _, err := parseInputMsg(ip[:8]); err == nil {
		t.Fatal("short input message accepted")
	}
	if err := writeMsg(io.Discard, msgFrame, make([]byte, maxPayload+1)); err == nil {
		t.Fatal("oversized write accepted")
	}
}
