package stream

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"odr/internal/chaos"
	"odr/internal/codec"
	"odr/internal/testutil"
)

// ---------------------------------------------------------------------------
// Failure matrix: every chaos fault kind × {Client, Server, Hub} with an
// explicit expected outcome. The chaos schedules are seeded and offset-based,
// so each cell exercises the same fault at the same point in the stream on
// every run.
//
// Outcomes:
//   - tolerate:   the stream keeps delivering frames through the fault
//   - resume:     delivery breaks but recovers (keyframe resync or reconnect)
//   - evict:      the serving side detects the stall via its deadline and
//                 cuts the session (eviction counters observable)
//   - cleanError: the session terminates with an error — no hang, no panic,
//                 no goroutine leak
// ---------------------------------------------------------------------------

const matrixSeed = 1

// --- Client column: a reconnecting client against a Hub -------------------

type clientCell struct {
	kind   chaos.Kind
	spec   string
	expect string
}

func TestFailureMatrixClient(t *testing.T) {
	cells := []clientCell{
		// loss@6x2 swallows both writes of one frame message (header +
		// payload) — a whole frame vanishes without breaking framing, which
		// only the parent-chain check can detect. corrupt@5 lands exactly on
		// the first payload write, which only the bitstream CRC can detect.
		{chaos.Latency, "latency@0:2ms", "tolerate"},
		{chaos.Bandwidth, "bw@0:1048576", "tolerate"},
		{chaos.Loss, "loss@6x2", "resume"},
		{chaos.Corrupt, "corrupt@5", "resume"},
		{chaos.StallRead, "stallr@1:50ms", "tolerate"},
		{chaos.StallWrite, "stallw@6000:50ms", "tolerate"},
		{chaos.Disconnect, "disc@9000", "resume"},
		{chaos.HalfOpen, "halfopen@2000", "resume"},
	}
	for _, cell := range cells {
		t.Run(cell.kind.String(), func(t *testing.T) {
			testutil.VerifyNoLeaks(t)
			sched := chaos.MustParse(cell.spec)
			h := NewHub(HubConfig{Width: 32, Height: 18, TargetFPS: 240})
			go h.Run()
			defer h.Stop()

			// Each dial is a fresh faulty path: write-side faults wrap the
			// hub's end (they shape the frame stream), read-side faults wrap
			// the client's end (they starve its reads).
			dial := func() (net.Conn, error) {
				sc, cc := net.Pipe()
				switch cell.kind {
				case chaos.StallRead, chaos.HalfOpen:
					h.Attach(sc, 0, nil)
					return chaos.Wrap(cc, sched, matrixSeed), nil
				default:
					h.Attach(chaos.Wrap(sc, sched, matrixSeed), 0, nil)
					return cc, nil
				}
			}
			cli := NewReconnectingClient(dial, ReconnectPolicy{
				MaxAttempts: 8,
				BaseDelay:   5 * time.Millisecond,
				MaxDelay:    50 * time.Millisecond,
				IdleTimeout: 300 * time.Millisecond,
				Seed:        matrixSeed,
			})
			runErr := make(chan error, 1)
			go func() { runErr <- cli.Run() }()

			// The fault offsets all land within the first ~10 KiB of frame
			// traffic, so 40 decoded frames prove post-fault progress.
			waitFrames(t, cli, 40, 15*time.Second)
			rep := cli.Report()
			if cell.expect == "resume" && rep.Resyncs+rep.Reconnects == 0 {
				t.Errorf("%s: expected a resync or reconnect, got none (%+v)", cell.kind, rep)
			}
			cli.Stop()
			select {
			case err := <-runErr:
				if err != nil {
					t.Errorf("%s: client Run: %v", cell.kind, err)
				}
			case <-time.After(10 * time.Second):
				t.Fatalf("%s: client did not stop", cell.kind)
			}
			h.Stop()
		})
	}
}

// --- Server column: chaos on the single server's conn ---------------------

type serverCell struct {
	kind       chaos.Kind
	spec       string
	expect     string
	readTO     time.Duration // ServerConfig.ReadTimeout
	writeTO    time.Duration // ServerConfig.WriteTimeout
	sendInputs bool          // keep the input path busy (for read-side cells)
}

func TestFailureMatrixServer(t *testing.T) {
	cells := []serverCell{
		// See the client matrix for why loss@6x2 and corrupt@5: whole-frame
		// loss exercises the parent-chain check, payload corruption the CRC.
		{kind: chaos.Latency, spec: "latency@0:2ms", expect: "tolerate"},
		{kind: chaos.Bandwidth, spec: "bw@0:1048576", expect: "tolerate"},
		{kind: chaos.Loss, spec: "loss@6x2", expect: "resume"},
		{kind: chaos.Corrupt, spec: "corrupt@5", expect: "resume"},
		{kind: chaos.StallRead, spec: "stallr@1:10s", expect: "evict",
			readTO: 150 * time.Millisecond, sendInputs: true},
		{kind: chaos.StallWrite, spec: "stallw@6000:300ms", expect: "evict",
			writeTO: 100 * time.Millisecond},
		{kind: chaos.Disconnect, spec: "disc@9000", expect: "cleanError"},
		{kind: chaos.HalfOpen, spec: "halfopen@0", expect: "evict",
			readTO: 150 * time.Millisecond},
	}
	for _, cell := range cells {
		t.Run(cell.kind.String(), func(t *testing.T) {
			testutil.VerifyNoLeaks(t)
			sc, cc := net.Pipe()
			fc := chaos.Wrap(sc, chaos.MustParse(cell.spec), matrixSeed)
			srv := NewServer(fc, ServerConfig{
				Width: 32, Height: 18, Policy: ODRRegulation, TargetFPS: 240,
				ReadTimeout: cell.readTO, WriteTimeout: cell.writeTO,
			})
			cli := NewClient(cc)
			srvErr := make(chan error, 1)
			cliErr := make(chan error, 1)
			var srvDone, cliDone bool
			go func() { srvErr <- srv.Run() }()
			go func() { cliErr <- cli.Run() }()
			// Teardown runs even when an assertion below t.Fatals out, so a
			// failed cell can never strand a running server for the leak
			// check to trip over. Each loop channel is received exactly once.
			defer func() {
				srv.Stop()
				cli.Stop()
				if !srvDone {
					select {
					case <-srvErr:
					case <-time.After(10 * time.Second):
						t.Errorf("%s: server loop did not exit", cell.kind)
					}
				}
				if !cliDone {
					select {
					case <-cliErr:
					case <-time.After(10 * time.Second):
						t.Errorf("%s: client loop did not exit", cell.kind)
					}
				}
			}()
			stopInputs := make(chan struct{})
			if cell.sendInputs {
				go func() {
					for {
						select {
						case <-stopInputs:
							return
						case <-time.After(20 * time.Millisecond):
							if _, err := cli.SendInput(); err != nil {
								return
							}
						}
					}
				}()
			}
			defer close(stopInputs)

			switch cell.expect {
			case "tolerate":
				waitFrames(t, cli, 40, 15*time.Second)
			case "resume":
				waitFrames(t, cli, 40, 15*time.Second)
				rep := cli.Report()
				if rep.Resyncs == 0 {
					t.Errorf("%s: expected a resync (%+v)", cell.kind, rep)
				}
				if srv.Stats().Snapshot().KeyReqs == 0 {
					t.Errorf("%s: server never saw the keyframe request", cell.kind)
				}
			case "evict":
				select {
				case err := <-srvErr:
					srvDone = true
					if err == nil || !strings.Contains(err.Error(), "evicted") {
						t.Errorf("%s: server Run = %v, want eviction error", cell.kind, err)
					}
					if got := srv.Stats().Snapshot().Evicted; got != 1 {
						t.Errorf("%s: Evicted = %d, want 1", cell.kind, got)
					}
				case <-time.After(15 * time.Second):
					t.Fatalf("%s: server never evicted", cell.kind)
				}
			case "cleanError":
				// The faulted session must terminate — an error on at least
				// one side, never a hang.
				var sErr, cErr error
				select {
				case sErr = <-srvErr:
					srvDone = true
					cli.Stop()
					cErr = <-cliErr
					cliDone = true
				case cErr = <-cliErr:
					cliDone = true
					srv.Stop()
					sErr = <-srvErr
					srvDone = true
				case <-time.After(15 * time.Second):
					t.Fatalf("%s: neither side terminated", cell.kind)
				}
				if sErr == nil && cErr == nil {
					t.Errorf("%s: expected a session error on some side", cell.kind)
				}
			}
		})
	}
}

// --- Hub column: a faulted victim session next to a healthy peer ----------

type hubCell struct {
	kind       chaos.Kind
	spec       string
	expect     string
	readTO     time.Duration
	writeTO    time.Duration
	sendInputs bool // both clients push inputs (read-deadline cells)
}

func TestFailureMatrixHub(t *testing.T) {
	cells := []hubCell{
		{kind: chaos.Latency, spec: "latency@0:2ms", expect: "tolerate"},
		{kind: chaos.Bandwidth, spec: "bw@0:1048576", expect: "tolerate"},
		{kind: chaos.Loss, spec: "loss@6x2", expect: "resume"},
		{kind: chaos.Corrupt, spec: "corrupt@5", expect: "resume"},
		{kind: chaos.StallRead, spec: "stallr@1:10s", expect: "evict",
			readTO: 150 * time.Millisecond, sendInputs: true},
		{kind: chaos.StallWrite, spec: "stallw@6000:300ms", expect: "evict",
			writeTO: 100 * time.Millisecond},
		{kind: chaos.Disconnect, spec: "disc@9000", expect: "cleanError"},
		{kind: chaos.HalfOpen, spec: "halfopen@0", expect: "evict",
			readTO: 150 * time.Millisecond, sendInputs: true},
	}
	for _, cell := range cells {
		t.Run(cell.kind.String(), func(t *testing.T) {
			testutil.VerifyNoLeaks(t)
			h := NewHub(HubConfig{
				Width: 32, Height: 18, TargetFPS: 240,
				ReadTimeout: cell.readTO, WriteTimeout: cell.writeTO,
			})
			go h.Run()
			defer h.Stop()

			// Victim: its hub-side conn runs under the fault schedule.
			vs, vc := net.Pipe()
			victimGone := make(chan SessionStats, 1)
			h.Attach(chaos.Wrap(vs, chaos.MustParse(cell.spec), matrixSeed), 0,
				func(s SessionStats) { victimGone <- s })
			victim := NewClient(vc)
			victimErr := make(chan error, 1)
			var victimDone bool
			go func() { victimErr <- victim.Run() }()

			// Healthy peer: a clean conn on the same hub.
			hs, hc := net.Pipe()
			h.Attach(hs, 0, nil)
			healthy := NewClient(hc)
			healthyErr := make(chan error, 1)
			go func() { healthyErr <- healthy.Run() }()

			// Teardown runs even when an assertion t.Fatals out mid-cell;
			// each loop channel is received exactly once.
			defer func() {
				victim.Stop()
				healthy.Stop()
				h.Stop()
				if !victimDone {
					select {
					case <-victimErr:
					case <-time.After(10 * time.Second):
						t.Errorf("%s: victim client did not stop", cell.kind)
					}
				}
				select {
				case <-healthyErr:
				case <-time.After(10 * time.Second):
					t.Errorf("%s: healthy client did not stop", cell.kind)
				}
			}()

			stopInputs := make(chan struct{})
			if cell.sendInputs {
				for _, c := range []*Client{victim, healthy} {
					go func(c *Client) {
						for {
							select {
							case <-stopInputs:
								return
							case <-time.After(20 * time.Millisecond):
								if _, err := c.SendInput(); err != nil {
									return
								}
							}
						}
					}(c)
				}
			}
			defer close(stopInputs)

			switch cell.expect {
			case "tolerate":
				waitFrames(t, victim, 40, 15*time.Second)
			case "resume":
				waitFrames(t, victim, 40, 15*time.Second)
				if rep := victim.Report(); rep.Resyncs == 0 {
					t.Errorf("%s: victim expected a resync (%+v)", cell.kind, rep)
				}
			case "evict":
				select {
				case <-victimGone:
				case <-time.After(15 * time.Second):
					t.Fatalf("%s: victim session never detached", cell.kind)
				}
				if got := h.Evicted(); got != 1 {
					t.Errorf("%s: hub Evicted = %d, want 1", cell.kind, got)
				}
			case "cleanError":
				// The victim's session must terminate (client error or EOF);
				// cut the conn afterwards so the hub-side session detaches.
				select {
				case <-victimErr:
					victimDone = true
				case <-time.After(15 * time.Second):
					t.Fatalf("%s: victim never terminated", cell.kind)
				}
				victim.Stop()
				select {
				case <-victimGone:
				case <-time.After(10 * time.Second):
					t.Fatalf("%s: victim session never detached", cell.kind)
				}
			}

			// The healthy peer must be unaffected in every cell.
			waitFrames(t, healthy, 40, 15*time.Second)
			if h.Evicted() > 1 {
				t.Errorf("%s: healthy peer was evicted too", cell.kind)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Protocol-level recovery tests (kept from the pre-matrix suite, updated for
// the parent-chain + CRC header).
// ---------------------------------------------------------------------------

// TestClientResyncsMidStreamJoin verifies the keyframe-recovery protocol: a
// client that joins after the stream started (first frame it sees is a
// delta) requests a keyframe and recovers instead of failing.
func TestClientResyncsMidStreamJoin(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	sc, cc := net.Pipe()
	defer sc.Close()

	// Hand-rolled "server": pre-encode three frames (key, delta, delta),
	// send only the deltas first, then answer the key request with a fresh
	// keyframe.
	srv := NewServer(sc, ServerConfig{Width: 16, Height: 9}) // for its encoder/game only
	game := srv.game
	enc := srv.enc
	pix := make([]byte, game.FrameBytes())
	encodeNext := func() []byte {
		game.Render(pix)
		bs, err := enc.Encode(pix)
		if err != nil {
			t.Fatal(err)
		}
		return bs
	}
	_ = encodeNext() // keyframe the client never sees
	delta1 := encodeNext()
	delta2 := encodeNext()

	cli := NewClient(cc)
	cliDone := make(chan error, 1)
	go func() { cliDone <- cli.Run() }()

	// A real server reads inputs concurrently with writing frames; the mock
	// must too, or the synchronous pipe deadlocks.
	keyReqs := make(chan byte, 16)
	go func() {
		for {
			typ, _, err := readMsg(sc, nil)
			if err != nil {
				close(keyReqs)
				return
			}
			keyReqs <- typ
		}
	}()
	serverDone := make(chan error, 1)
	go func() {
		// Send the two deltas the client cannot decode.
		if err := writeMsg(sc, msgFrame, frameMsg(frameMeta{seq: 2, parentSeq: 1}, delta1)); err != nil {
			serverDone <- err
			return
		}
		if err := writeMsg(sc, msgFrame, frameMsg(frameMeta{seq: 3, parentSeq: 2}, delta2)); err != nil {
			serverDone <- err
			return
		}
		// Expect a keyframe request.
		typ, ok := <-keyReqs
		if !ok || typ != msgKeyReq {
			serverDone <- errors.New("expected msgKeyReq")
			return
		}
		enc.ForceKeyframe()
		key := encodeNext()
		if err := writeMsg(sc, msgFrame, frameMsg(frameMeta{seq: 4}, key)); err != nil {
			serverDone <- err
			return
		}
		serverDone <- writeMsg(sc, msgBye, nil)
	}()

	select {
	case err := <-serverDone:
		if err != nil {
			t.Fatalf("mock server: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("mock server stuck")
	}
	select {
	case err := <-cliDone:
		if err != nil {
			t.Fatalf("client: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client stuck")
	}
	rep := cli.Report()
	if rep.Resyncs == 0 {
		t.Fatal("client never requested a resync")
	}
	if rep.Frames != 1 {
		t.Fatalf("client decoded %d frames, want exactly the keyframe", rep.Frames)
	}
}

// TestServerHandlesKeyReq verifies the live server responds to a keyframe
// request with a keyframe on the wire.
func TestServerHandlesKeyReq(t *testing.T) {
	srv, cli, cleanup := startPair(t, ServerConfig{
		Width: 32, Height: 18, Policy: ODRRegulation, TargetFPS: 60,
		Codec: codec.Options{QuantShift: 2, KeyInterval: 1 << 20},
	})
	defer cleanup()
	waitFrames(t, cli, 10, 10*time.Second)
	if err := cli.sendKeyReq(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Stats().Snapshot().KeyReqs > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("server never observed the keyframe request")
}

// TestClientResyncsOnChecksumMismatch: a frame whose bitstream fails the CRC
// must trigger a keyframe resync, never reach the decoder.
func TestClientResyncsOnChecksumMismatch(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	sc, cc := net.Pipe()
	defer sc.Close()
	cli := NewClient(cc)
	done := make(chan error, 1)
	go func() { done <- cli.Run() }()

	msg := frameMsg(frameMeta{seq: 1}, []byte{0xD3, 0, 0, 16, 0, 0, 0, 9, 0, 0, 0})
	msg[len(msg)-1] ^= 0xFF // corrupt the bitstream after the CRC was stamped
	if err := writeMsg(sc, msgFrame, msg); err != nil {
		t.Fatal(err)
	}
	typ, _, err := readMsg(sc, nil)
	if err != nil || typ != msgKeyReq {
		t.Fatalf("expected a keyframe request after checksum mismatch, got typ=%d err=%v", typ, err)
	}
	if err := writeMsg(sc, msgBye, nil); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("client: %v", err)
	}
	if rep := cli.Report(); rep.Resyncs != 1 || rep.Frames != 0 {
		t.Fatalf("report = %+v, want 1 resync and 0 decoded frames", rep)
	}
}

// TestServerRejectsGarbageMessage: unknown message types terminate the
// session cleanly.
func TestServerRejectsGarbageMessage(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	sc, cc := net.Pipe()
	srv := NewServer(sc, ServerConfig{Width: 16, Height: 9, Policy: ODRRegulation, TargetFPS: 60})
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Run() }()
	// Drain frames so the server isn't blocked writing.
	go func() { _, _ = io.Copy(io.Discard, cc) }()
	if err := writeMsg(cc, 0xEE, []byte("junk")); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("expected protocol error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server hung on garbage message")
	}
	cc.Close()
}

// TestClientRejectsOversizedMessage: the length prefix is bounded.
func TestClientRejectsOversizedMessage(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	sc, cc := net.Pipe()
	defer sc.Close()
	cli := NewClient(cc)
	done := make(chan error, 1)
	go func() { done <- cli.Run() }()
	var hdr [5]byte
	hdr[0] = msgFrame
	binary.LittleEndian.PutUint32(hdr[1:], uint32(maxPayload+1))
	if _, err := sc.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected size-limit error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client hung on oversized message")
	}
}

// TestProtoRoundTrip covers the wire encoding helpers directly.
func TestProtoRoundTrip(t *testing.T) {
	payload := frameMsg(frameMeta{seq: 7, parentSeq: 6, inputID: 3, inputNanos: 1234, renderNanos: 5678}, []byte{1, 2, 3})
	m, bs, err := parseFrameMsg(payload)
	if err != nil || m.seq != 7 || m.parentSeq != 6 || m.inputID != 3 ||
		m.inputNanos != 1234 || m.renderNanos != 5678 || len(bs) != 3 {
		t.Fatalf("frame round trip: %+v %v %v", m, bs, err)
	}
	if _, _, err := parseFrameMsg(payload[:10]); err == nil {
		t.Fatal("short frame message accepted")
	}
	corrupted := append([]byte(nil), payload...)
	corrupted[len(corrupted)-1] ^= 0x01
	if _, _, err := parseFrameMsg(corrupted); !errors.Is(err, errFrameChecksum) {
		t.Fatalf("corrupted frame: err = %v, want checksum mismatch", err)
	}
	ip := inputMsg(9, 42)
	id, nanos, err := parseInputMsg(ip)
	if err != nil || id != 9 || nanos != 42 {
		t.Fatalf("input round trip: %v %v %v", id, nanos, err)
	}
	if _, _, err := parseInputMsg(ip[:8]); err == nil {
		t.Fatal("short input message accepted")
	}
	if err := writeMsg(io.Discard, msgFrame, make([]byte, maxPayload+1)); err == nil {
		t.Fatal("oversized write accepted")
	}
}
