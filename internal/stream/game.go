package stream

import (
	"math"
	"time"
)

// Game is the synthetic interactive 3D application the server renders: a
// procedurally animated scene (a plasma-style gradient with moving sprites)
// whose content advances with time and reacts visibly to user inputs. It
// stands in for the Pictor benchmarks in the real-time stack; the regulators
// only care that frames take real time to produce and change over time.
type Game struct {
	w, h int
	t    float64 // animation clock, advanced per frame
	// reaction is a decaying flash triggered by user input, making
	// input-to-frame causality visible (and testable) in pixels.
	reaction float64
	inputs   int

	// ExtraCost, when set, is sampled per frame and busy-waited/slept to
	// emulate a heavier GPU load.
	ExtraCost func() time.Duration
}

// NewGame returns a game rendering w×h RGBA frames.
func NewGame(w, h int) *Game {
	return &Game{w: w, h: h}
}

// Size returns the frame dimensions.
func (g *Game) Size() (w, h int) { return g.w, g.h }

// FrameBytes returns the raw frame size.
func (g *Game) FrameBytes() int { return g.w * g.h * 4 }

// OnInput registers a user input: the next frames flash brighter, so the
// responding frame is distinguishable from refresh frames.
func (g *Game) OnInput() {
	g.reaction = 1
	g.inputs++
}

// Inputs returns the number of inputs applied.
func (g *Game) Inputs() int { return g.inputs }

// Render draws the next frame into dst (len must be FrameBytes) and
// advances the animation. It performs real pixel work — this is the
// "GPU rendering" of the real-time stack.
func (g *Game) Render(dst []byte) {
	if len(dst) != g.FrameBytes() {
		panic("stream: bad frame buffer size")
	}
	g.t += 0.05
	t := g.t
	flash := g.reaction
	g.reaction *= 0.8
	// Sprite position orbits the center.
	cx := float64(g.w) * (0.5 + 0.3*math.Cos(t))
	cy := float64(g.h) * (0.5 + 0.3*math.Sin(1.3*t))
	i := 0
	for y := 0; y < g.h; y++ {
		fy := float64(y)
		for x := 0; x < g.w; x++ {
			fx := float64(x)
			v := math.Sin(fx*0.07+t) + math.Cos(fy*0.09-t*0.7)
			r := byte(128 + 80*v)
			gg := byte(128 + 80*math.Sin(v+t*0.5))
			b := byte(128 + 80*math.Cos(v-t*0.3))
			// Sprite: a bright disc.
			dx, dy := fx-cx, fy-cy
			if dx*dx+dy*dy < 25 {
				r, gg, b = 255, 255, 220
			}
			if flash > 0.05 {
				r = satAdd(r, byte(90*flash))
				gg = satAdd(gg, byte(90*flash))
				b = satAdd(b, byte(90*flash))
			}
			dst[i] = r
			dst[i+1] = gg
			dst[i+2] = b
			dst[i+3] = 255
			i += 4
		}
	}
	if g.ExtraCost != nil {
		if d := g.ExtraCost(); d > 0 {
			time.Sleep(d)
		}
	}
}

func satAdd(a, b byte) byte {
	s := int(a) + int(b)
	if s > 255 {
		return 255
	}
	return byte(s)
}

// Brightness returns the mean luminance of an RGBA buffer; tests use it to
// detect the input flash in decoded frames.
func Brightness(pix []byte) float64 {
	if len(pix) == 0 {
		return 0
	}
	var sum float64
	n := 0
	for i := 0; i+3 < len(pix); i += 4 {
		sum += 0.299*float64(pix[i]) + 0.587*float64(pix[i+1]) + 0.114*float64(pix[i+2])
		n++
	}
	return sum / float64(n)
}
