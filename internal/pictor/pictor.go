// Package pictor catalogs the evaluation setup of the paper (§6.1): the six
// Pictor-suite benchmarks (Table 1), the two deployment platforms (private
// cloud and Google Compute Engine), the two resolutions, and the 28
// per-benchmark configurations formed by {NoReg, Int, RVS, ODR} × QoS goals.
//
// The benchmark parameters are calibrated so that the unregulated (NoReg)
// behaviour matches the rates the paper reports: e.g. InMind at 720p in the
// private cloud renders at ~190 FPS while encoding/decoding at ~93 FPS
// (Fig. 3), and IMHOTEP shows the largest FPS gap (Table 2).
package pictor

import (
	"fmt"
	"time"

	"odr/internal/netsim"
	"odr/internal/workload"
)

// Benchmark identifies one Pictor benchmark.
type Benchmark string

// The six benchmarks of Table 1.
const (
	STK Benchmark = "STK" // SuperTuxKart — racing game
	ZAD Benchmark = "0AD" // 0 A.D. — real-time strategy
	RE  Benchmark = "RE"  // Red Eclipse — first-person shooter
	D2  Benchmark = "D2"  // DoTA2 — battle arena
	IM  Benchmark = "IM"  // InMind — VR game
	ITP Benchmark = "ITP" // IMHOTEP — health-training VR
)

// Benchmarks lists all six in the paper's order.
var Benchmarks = []Benchmark{STK, ZAD, RE, D2, IM, ITP}

// Description returns the Table 1 description.
func (b Benchmark) Description() string {
	switch b {
	case STK:
		return "Racing Game"
	case ZAD:
		return "Real-time Strategy Game"
	case RE:
		return "First-person Shooter Game"
	case D2:
		return "Battle Arena Game"
	case IM:
		return "VR Game"
	case ITP:
		return "Health Training VR"
	}
	return "Unknown"
}

// Params returns the workload model parameters for b. Medians are for 720p
// on the private-cloud hardware (i7-7820x + GTX 1080Ti); see package
// workload for the model.
func (b Benchmark) Params() workload.Params {
	ms := func(f float64) time.Duration { return time.Duration(f * float64(time.Millisecond)) }
	switch b {
	case STK:
		return workload.Params{
			Name: string(b), RenderMedian: ms(4.0), CopyMedian: ms(1.1),
			EncodeMedian: ms(5.2), DecodeMedian: ms(3.4),
			Jitter: 0.24, SpikeProb: 0.10, SpikeMax: 3.0,
			BytesMedian: 34 << 10, InputRate: 4.5, GPUShare: 0.55, CPUIPC: 0.92,
			ComplexityWander: 0.8,
		}
	case ZAD:
		return workload.Params{
			Name: string(b), RenderMedian: ms(8.6), CopyMedian: ms(1.2),
			EncodeMedian: ms(8.0), DecodeMedian: ms(3.8),
			Jitter: 0.30, SpikeProb: 0.14, SpikeMax: 3.5,
			BytesMedian: 30 << 10, InputRate: 2.2, GPUShare: 0.40, CPUIPC: 0.55,
			ComplexityWander: 1.0,
		}
	case RE:
		return workload.Params{
			Name: string(b), RenderMedian: ms(3.5), CopyMedian: ms(1.0),
			EncodeMedian: ms(3.7), DecodeMedian: ms(3.2),
			Jitter: 0.22, SpikeProb: 0.08, SpikeMax: 2.8,
			BytesMedian: 38 << 10, InputRate: 5.0, GPUShare: 0.60, CPUIPC: 0.88,
			ComplexityWander: 0.7,
		}
	case D2:
		return workload.Params{
			Name: string(b), RenderMedian: ms(5.4), CopyMedian: ms(1.1),
			EncodeMedian: ms(6.4), DecodeMedian: ms(3.6),
			Jitter: 0.26, SpikeProb: 0.12, SpikeMax: 3.2,
			BytesMedian: 32 << 10, InputRate: 3.8, GPUShare: 0.50, CPUIPC: 0.70,
			ComplexityWander: 0.9,
		}
	case IM:
		// Calibrated against Fig. 3/4: render ~190FPS, encode ~93FPS
		// unregulated; 80-90% of frames under 16.6ms with a heavy tail.
		return workload.Params{
			Name: string(b), RenderMedian: ms(4.2), CopyMedian: ms(1.2),
			EncodeMedian: ms(6.7), DecodeMedian: ms(3.7),
			Jitter: 0.28, SpikeProb: 0.13, SpikeMax: 3.6,
			BytesMedian: 36 << 10, InputRate: 3.0, GPUShare: 0.62, CPUIPC: 0.62,
			ComplexityWander: 0.9,
		}
	case ITP:
		// Largest FPS gap in Table 2: simple scenes render extremely fast
		// while large medical-visualization frames encode slowly.
		return workload.Params{
			Name: string(b), RenderMedian: ms(3.4), CopyMedian: ms(1.3),
			EncodeMedian: ms(8.1), DecodeMedian: ms(3.9),
			Jitter: 0.24, SpikeProb: 0.10, SpikeMax: 3.0,
			BytesMedian: 42 << 10, InputRate: 2.0, GPUShare: 0.72, CPUIPC: 0.74,
			ComplexityWander: 0.6,
		}
	}
	panic(fmt.Sprintf("pictor: unknown benchmark %q", b))
}

// Platform identifies a deployment target.
type Platform string

// The two §6.1 platforms.
const (
	PrivateCloud Platform = "Priv" // i7-7820x + GTX 1080Ti, 1 Gbps LAN, ~2ms RTT
	GoogleGCE    Platform = "GCE"  // n1-highcpu-16 + Tesla P4, public Internet, ~25ms RTT
)

// Resolution identifies a streaming resolution.
type Resolution string

// The two §6.1 resolutions.
const (
	R720p  Resolution = "720p"  // 1280x720
	R1080p Resolution = "1080p" // 1920x1080
)

// PixelFactor returns the pixel count relative to 720p.
func (r Resolution) PixelFactor() float64 {
	if r == R1080p {
		return 2.25
	}
	return 1
}

// TargetFPS returns the paper's fixed-FPS QoS goal for the resolution:
// 60 FPS at 720p, 30 FPS at 1080p (§6.1).
func (r Resolution) TargetFPS() float64 {
	if r == R1080p {
		return 30
	}
	return 60
}

// Scale returns the workload scaling for a platform/resolution pair.
func Scale(p Platform, r Resolution) workload.Scale {
	s := workload.Scale{GPU: 1, CPU: 1, Client: 1, Pixels: r.PixelFactor()}
	if p == GoogleGCE {
		s.GPU = 0.90 // headless Tesla P4: no scanout, slightly faster raw rendering
		s.CPU = 0.80 // 16-core Xeon: more encode threads
	}
	return s
}

// Network returns the network model parameters for a platform (see package
// netsim). The GCE path reproduces the public-Internet behaviour that makes
// NoReg collapse: moderate usable bandwidth with deep buffers.
func Network(p Platform) netsim.Params {
	if p == GoogleGCE {
		return netsim.Params{
			Name:        "gce",
			RTT:         25 * time.Millisecond,
			Jitter:      0.20,
			Bandwidth:   21e6 / 8, // ~21 Mbps usable on the WAN path
			BufferBytes: 8 << 20,  // deep provider buffers (bufferbloat)
		}
	}
	return netsim.Params{
		Name:        "private",
		RTT:         2 * time.Millisecond,
		Jitter:      0.08,
		Bandwidth:   1e9 / 8 * 0.6, // 1 Gbps LAN, 60% usable for the stream
		BufferBytes: 4 << 20,
	}
}

// PlatformGroup names one of the evaluation groups used by Table 2 and
// Figures 9-11.
type PlatformGroup struct {
	Platform   Platform
	Resolution Resolution
}

// String formats the group the way the paper labels it ("Priv720p").
func (g PlatformGroup) String() string {
	return string(g.Platform) + string(g.Resolution)
}

// Groups lists the four platform/resolution groups of Fig. 9.
var Groups = []PlatformGroup{
	{PrivateCloud, R720p},
	{GoogleGCE, R720p},
	{PrivateCloud, R1080p},
	{GoogleGCE, R1080p},
}
