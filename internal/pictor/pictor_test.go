package pictor

import (
	"testing"
	"time"
)

func TestAllBenchmarksHaveParams(t *testing.T) {
	for _, b := range Benchmarks {
		p := b.Params()
		if p.Name != string(b) {
			t.Errorf("%s: Name = %q", b, p.Name)
		}
		if p.RenderMedian <= 0 || p.EncodeMedian <= 0 || p.CopyMedian <= 0 || p.DecodeMedian <= 0 {
			t.Errorf("%s: non-positive median", b)
		}
		if p.BytesMedian < 10<<10 {
			t.Errorf("%s: implausible frame bytes %d", b, p.BytesMedian)
		}
		if p.InputRate < 2 || p.InputRate > 5 {
			t.Errorf("%s: input rate %.1f outside the paper's 2-5/s", b, p.InputRate)
		}
		if p.GPUShare <= 0 || p.GPUShare > 1 || p.CPUIPC <= 0 {
			t.Errorf("%s: bad GPUShare/CPUIPC", b)
		}
		if b.Description() == "Unknown" {
			t.Errorf("%s: missing description", b)
		}
	}
}

func TestUnknownBenchmarkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown benchmark")
		}
	}()
	Benchmark("nope").Params()
}

func TestITPHasLargestRenderEncodeRatio(t *testing.T) {
	// IMHOTEP is the largest-FPS-gap benchmark in Table 2: fast renders,
	// slow encodes.
	itp := ITP.Params()
	ratioITP := float64(itp.EncodeMedian) / float64(itp.RenderMedian)
	for _, b := range Benchmarks {
		if b == ITP {
			continue
		}
		p := b.Params()
		if r := float64(p.EncodeMedian) / float64(p.RenderMedian); r >= ratioITP {
			t.Fatalf("%s encode/render ratio %.2f >= ITP's %.2f", b, r, ratioITP)
		}
	}
}

func TestResolution(t *testing.T) {
	if R720p.PixelFactor() != 1 || R1080p.PixelFactor() != 2.25 {
		t.Fatal("pixel factors wrong")
	}
	if R720p.TargetFPS() != 60 || R1080p.TargetFPS() != 30 {
		t.Fatal("QoS targets wrong (§6.1: 60FPS at 720p, 30FPS at 1080p)")
	}
}

func TestScale(t *testing.T) {
	s := Scale(PrivateCloud, R720p)
	if s.GPU != 1 || s.CPU != 1 || s.Pixels != 1 {
		t.Fatalf("private 720p should be the reference scale: %+v", s)
	}
	g := Scale(GoogleGCE, R1080p)
	if g.Pixels != 2.25 {
		t.Fatalf("GCE 1080p pixels = %v", g.Pixels)
	}
	if g.CPU == 1 && g.GPU == 1 {
		t.Fatal("GCE must differ from the private-cloud hardware")
	}
}

func TestNetwork(t *testing.T) {
	priv, gce := Network(PrivateCloud), Network(GoogleGCE)
	if priv.RTT != 2*time.Millisecond {
		t.Fatalf("private RTT = %v", priv.RTT)
	}
	if gce.RTT != 25*time.Millisecond {
		t.Fatalf("GCE RTT = %v (§6.1: ~25ms)", gce.RTT)
	}
	if gce.Bandwidth >= priv.Bandwidth {
		t.Fatal("GCE path must be narrower than the 1Gbps LAN")
	}
	if gce.BufferBytes <= priv.BufferBytes {
		t.Fatal("GCE path should have the deeper (bufferbloated) buffers")
	}
}

func TestGroups(t *testing.T) {
	if len(Groups) != 4 {
		t.Fatalf("want 4 platform groups, got %d", len(Groups))
	}
	if Groups[0].String() != "Priv720p" || Groups[3].String() != "GCE1080p" {
		t.Fatalf("group labels wrong: %v, %v", Groups[0], Groups[3])
	}
}

func TestGCEBandwidthSupportsODRButNotNoReg(t *testing.T) {
	// The congestion design point: a 60FPS regulated 720p stream fits the
	// GCE path with headroom, while unregulated encoding (~90+ FPS of
	// ~36KB frames) oversubscribes it.
	gce := Network(GoogleGCE)
	frame := float64(IM.Params().BytesMedian)
	odr := 60 * frame
	noreg := 92 * frame
	if odr >= gce.Bandwidth*0.85 {
		t.Fatalf("ODR60 load %.1f Mbps does not fit the GCE path", odr*8/1e6)
	}
	if noreg <= gce.Bandwidth*1.05 {
		t.Fatalf("NoReg load %.1f Mbps does not oversubscribe the GCE path", noreg*8/1e6)
	}
}
