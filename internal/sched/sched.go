// Package sched is the shared experiment runner: a deterministic scheduler
// that executes independent pipeline.Config cells on the process-wide
// worker pool (internal/wpool, shared with the tile codec), plus a
// content-addressed result cache keyed by the canonicalized cell
// (cache.go).
//
// Determinism comes from two properties. First, pipeline.Run is a pure
// function of its Config — each cell carries its own seed (seedFor in
// package experiments), so execution order cannot influence a result.
// Second, the runner reassembles results by submission index, so callers
// that print results in slice order produce byte-identical output whether
// the batch ran on one worker or sixteen.
package sched

import (
	"runtime"

	"odr/internal/obs"
	"odr/internal/pipeline"
	"odr/internal/wpool"
)

// Options configures a Runner.
type Options struct {
	// Workers is the number of concurrent workers (0 = GOMAXPROCS,
	// 1 = sequential execution in the calling goroutine).
	Workers int
	// Cache, when non-nil, serves cacheable cells from disk and persists
	// fresh results (see Cache and CellKey).
	Cache *Cache
	// Metrics, when non-nil, receives the odr_sched_cells_run_total,
	// odr_sched_cache_hits_total, odr_sched_cache_misses_total and
	// odr_sched_cache_stores_total counters (legacy sched_* names resolve
	// as aliases for one release).
	Metrics *obs.Registry
}

// Runner executes batches of cells. It is safe for concurrent use.
type Runner struct {
	workers int
	cache   *Cache

	cellsRun *obs.Counter // odr_sched_cells_run_total
	hits     *obs.Counter // odr_sched_cache_hits_total
	misses   *obs.Counter // odr_sched_cache_misses_total
	stores   *obs.Counter // odr_sched_cache_stores_total
}

// New returns a runner over o.
func New(o Options) *Runner {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if o.Metrics == nil {
		// Stats() must count even when the caller doesn't export metrics.
		o.Metrics = obs.NewRegistry()
	}
	for legacy, canon := range map[string]string{
		"sched_cells_run":    "odr_sched_cells_run_total",
		"sched_cache_hits":   "odr_sched_cache_hits_total",
		"sched_cache_misses": "odr_sched_cache_misses_total",
		"sched_cache_stores": "odr_sched_cache_stores_total",
	} {
		o.Metrics.Alias(legacy, canon)
	}
	o.Metrics.SetHelp("odr_sched_cells_run_total", "Experiment cells executed (cache misses included).")
	o.Metrics.SetHelp("odr_sched_cache_hits_total", "Experiment cells served from the result cache.")
	o.Metrics.SetHelp("odr_sched_cache_misses_total", "Result-cache lookups that missed.")
	o.Metrics.SetHelp("odr_sched_cache_stores_total", "Fresh results persisted to the result cache.")
	return &Runner{
		workers:  w,
		cache:    o.Cache,
		cellsRun: o.Metrics.Counter("odr_sched_cells_run_total"),
		hits:     o.Metrics.Counter("odr_sched_cache_hits_total"),
		misses:   o.Metrics.Counter("odr_sched_cache_misses_total"),
		stores:   o.Metrics.Counter("odr_sched_cache_stores_total"),
	}
}

// Workers returns the configured worker count.
func (r *Runner) Workers() int { return r.workers }

// Stats reports the lifetime cell and cache counts.
func (r *Runner) Stats() (run, hits, misses int64) {
	return r.cellsRun.Value(), r.hits.Value(), r.misses.Value()
}

// Cell is one schedulable simulation: a pipeline.Config plus the identity
// of its policy. Config.Policy is a function and cannot be hashed, so the
// caller names the concrete policy (including its options) in PolicyKey;
// an empty PolicyKey marks the cell uncacheable (it always runs).
type Cell struct {
	PolicyKey string
	Config    pipeline.Config
}

// Run executes every cell and returns the results in submission order.
// Cell i's result is always out[i], regardless of which worker ran it.
func (r *Runner) Run(cells []Cell) []*pipeline.Result {
	return Map(r.workers, len(cells), func(i int) *pipeline.Result {
		return r.runCell(cells[i])
	})
}

// RunOne executes a single cell (with cache probing) in the calling
// goroutine.
func (r *Runner) RunOne(c Cell) *pipeline.Result { return r.runCell(c) }

func (r *Runner) runCell(c Cell) *pipeline.Result {
	key, cacheable := CellKey(c)
	if cacheable && r.cache != nil {
		if res, ok := r.cache.Get(key); ok {
			r.hits.Inc()
			return res
		}
		r.misses.Inc()
	}
	res := pipeline.Run(c.Config)
	r.cellsRun.Inc()
	if cacheable && r.cache != nil {
		if r.cache.Put(key, res) == nil {
			r.stores.Inc()
		}
	}
	return res
}

// Map runs fn(i) for every i in [0, n) across up to workers concurrent
// executors and returns the results in index order: out[i] always holds
// fn(i), and fn runs exactly once per index. Execution order is arbitrary
// but with pure fn the output is identical to a sequential loop. A panic
// in fn propagates to the caller after all executors have stopped.
//
// The work runs on the process-wide wpool.Default() pool — the same
// persistent workers the tile codec uses — instead of spawning a goroutine
// batch per call, so back-to-back experiment batches and in-flight frame
// encodes share one set of executors.
func Map[T any](workers, n int, fn func(int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	wpool.Default().Map(workers, n, func(i int) { out[i] = fn(i) })
	return out
}
