// Package sched is the shared experiment runner: a deterministic
// work-stealing scheduler that executes independent pipeline.Config cells
// across GOMAXPROCS workers, plus a content-addressed result cache keyed by
// the canonicalized cell (cache.go).
//
// Determinism comes from two properties. First, pipeline.Run is a pure
// function of its Config — each cell carries its own seed (seedFor in
// package experiments), so execution order cannot influence a result.
// Second, the runner reassembles results by submission index, so callers
// that print results in slice order produce byte-identical output whether
// the batch ran on one worker or sixteen.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"

	"odr/internal/obs"
	"odr/internal/pipeline"
)

// Options configures a Runner.
type Options struct {
	// Workers is the number of concurrent workers (0 = GOMAXPROCS,
	// 1 = sequential execution in the calling goroutine).
	Workers int
	// Cache, when non-nil, serves cacheable cells from disk and persists
	// fresh results (see Cache and CellKey).
	Cache *Cache
	// Metrics, when non-nil, receives the sched_cells_run,
	// sched_cache_hits, sched_cache_misses and sched_cache_stores counters.
	Metrics *obs.Registry
}

// Runner executes batches of cells. It is safe for concurrent use.
type Runner struct {
	workers int
	cache   *Cache

	cellsRun *obs.Counter // sched_cells_run
	hits     *obs.Counter // sched_cache_hits
	misses   *obs.Counter // sched_cache_misses
	stores   *obs.Counter // sched_cache_stores
}

// New returns a runner over o.
func New(o Options) *Runner {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if o.Metrics == nil {
		// Stats() must count even when the caller doesn't export metrics.
		o.Metrics = obs.NewRegistry()
	}
	return &Runner{
		workers:  w,
		cache:    o.Cache,
		cellsRun: o.Metrics.Counter("sched_cells_run"),
		hits:     o.Metrics.Counter("sched_cache_hits"),
		misses:   o.Metrics.Counter("sched_cache_misses"),
		stores:   o.Metrics.Counter("sched_cache_stores"),
	}
}

// Workers returns the configured worker count.
func (r *Runner) Workers() int { return r.workers }

// Stats reports the lifetime cell and cache counts.
func (r *Runner) Stats() (run, hits, misses int64) {
	return r.cellsRun.Value(), r.hits.Value(), r.misses.Value()
}

// Cell is one schedulable simulation: a pipeline.Config plus the identity
// of its policy. Config.Policy is a function and cannot be hashed, so the
// caller names the concrete policy (including its options) in PolicyKey;
// an empty PolicyKey marks the cell uncacheable (it always runs).
type Cell struct {
	PolicyKey string
	Config    pipeline.Config
}

// Run executes every cell and returns the results in submission order.
// Cell i's result is always out[i], regardless of which worker ran it.
func (r *Runner) Run(cells []Cell) []*pipeline.Result {
	return Map(r.workers, len(cells), func(i int) *pipeline.Result {
		return r.runCell(cells[i])
	})
}

// RunOne executes a single cell (with cache probing) in the calling
// goroutine.
func (r *Runner) RunOne(c Cell) *pipeline.Result { return r.runCell(c) }

func (r *Runner) runCell(c Cell) *pipeline.Result {
	key, cacheable := CellKey(c)
	if cacheable && r.cache != nil {
		if res, ok := r.cache.Get(key); ok {
			r.hits.Inc()
			return res
		}
		r.misses.Inc()
	}
	res := pipeline.Run(c.Config)
	r.cellsRun.Inc()
	if cacheable && r.cache != nil {
		if r.cache.Put(key, res) == nil {
			r.stores.Inc()
		}
	}
	return res
}

// Map runs fn(i) for every i in [0, n) across up to workers goroutines and
// returns the results in index order: out[i] always holds fn(i), and fn
// runs exactly once per index. Execution order is arbitrary — idle workers
// steal from loaded ones — but with pure fn the output is identical to a
// sequential loop. A panic in fn propagates to the caller after all
// workers have stopped.
func Map[T any](workers, n int, fn func(int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 || n >= 1<<31 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	spans := make([]span, workers)
	for w := 0; w < workers; w++ {
		spans[w].v.Store(pack(w*n/workers, (w+1)*n/workers))
	}
	var (
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  atomic.Bool
		panicVal  any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panicOnce.Do(func() { panicVal = p })
					panicked.Store(true)
				}
			}()
			for !panicked.Load() {
				i, ok := spans[self].pop()
				if !ok {
					if !steal(spans, self) {
						return
					}
					continue
				}
				out[i] = fn(i)
			}
		}(w)
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
	return out
}

// span is one worker's index range, packed next<<32|limit so that pops
// (the owner takes from the bottom) and steals (a thief takes the top
// half) are single-word CAS transitions. The packed word fully determines
// the range, and a popped index can never re-enter any span, so the
// classic ABA hazard cannot occur. The padding keeps neighbouring spans
// off one cache line.
type span struct {
	v atomic.Uint64
	_ [7]uint64
}

func pack(next, limit int) uint64 { return uint64(next)<<32 | uint64(uint32(limit)) }

func unpack(v uint64) (next, limit int) { return int(v >> 32), int(uint32(v)) }

// pop claims the next index of the worker's own span.
func (s *span) pop() (int, bool) {
	for {
		v := s.v.Load()
		next, limit := unpack(v)
		if next >= limit {
			return 0, false
		}
		if s.v.CompareAndSwap(v, pack(next+1, limit)) {
			return next, true
		}
	}
}

// steal scans the other spans for remaining work and moves the top half of
// the first non-empty one into self's (empty) span. It reports whether any
// work was found; a false return after a full scan means the batch is done
// for this worker.
func steal(spans []span, self int) bool {
	for off := 1; off < len(spans); off++ {
		victim := &spans[(self+off)%len(spans)]
		for {
			v := victim.v.Load()
			next, limit := unpack(v)
			remaining := limit - next
			if remaining <= 0 {
				break
			}
			mid := limit - (remaining+1)/2
			if victim.v.CompareAndSwap(v, pack(next, mid)) {
				spans[self].v.Store(pack(mid, limit))
				return true
			}
		}
	}
	return false
}
