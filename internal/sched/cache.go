package sched

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"time"

	"odr/internal/memmodel"
	"odr/internal/netsim"
	"odr/internal/pipeline"
	"odr/internal/powermodel"
	"odr/internal/workload"
)

// cacheSchema versions both the key derivation and the stored encoding.
// Bump it whenever pipeline.Result, metrics.Dist's JSON form, or the key
// material changes shape, so stale artifacts miss instead of decoding into
// the wrong struct.
const cacheSchema = 1

// Cache is a content-addressed store of pipeline results under one
// directory: each entry is <sha256 of the canonical cell>.json. Entries are
// plain JSON, not compressed — distribution samples are stored as packed
// base64 blobs that barely compress, and a cache hit's latency is the
// decode. Reads and writes are safe across concurrent workers and processes
// (writes go through a temp file + rename). A nil *Cache is valid and
// always misses.
type Cache struct {
	dir string
}

// OpenCache opens (creating if needed) the cache directory.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// cacheEntry is the on-disk envelope.
type cacheEntry struct {
	Schema int              `json:"schema"`
	Result *pipeline.Result `json:"result"`
}

// Get loads the result stored under key. ok is false on a miss; a corrupt
// or schema-mismatched artifact is treated as a miss, never an error.
func (c *Cache) Get(key string) (*pipeline.Result, bool) {
	if c == nil {
		return nil, false
	}
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(b, &e); err != nil || e.Schema != cacheSchema || e.Result == nil {
		return nil, false
	}
	return e.Result, true
}

// Put stores r under key atomically: the entry is written to a temp file
// in the same directory and renamed into place, so concurrent readers and
// writers never observe a torn artifact.
func (c *Cache) Put(key string, r *pipeline.Result) error {
	if c == nil {
		return nil
	}
	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		return err
	}
	err = json.NewEncoder(tmp).Encode(cacheEntry{Schema: cacheSchema, Result: r})
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// keyMaterial is the canonicalized, content-addressable view of a cell:
// every pipeline.Config field that influences the simulation, plus the
// caller-supplied policy identity. Field order is fixed by the struct, and
// encoding/json emits float64s with the minimal digits that round-trip
// exactly, so equal cells hash equally across processes.
type keyMaterial struct {
	Schema            int               `json:"schema"`
	PolicyKey         string            `json:"policy"`
	Label             string            `json:"label"`
	Workload          workload.Params   `json:"workload"`
	Scale             workload.Scale    `json:"scale"`
	Net               netsim.Params     `json:"net"`
	Duration          time.Duration     `json:"duration"`
	Warmup            time.Duration     `json:"warmup"`
	Seed              int64             `json:"seed"`
	RawFrameBytes     int               `json:"raw_frame_bytes"`
	RefreshHz         float64           `json:"refresh_hz"`
	MemConfig         memmodel.Config   `json:"mem"`
	PowerConfig       powermodel.Config `json:"power"`
	DisableContention bool              `json:"disable_contention"`
	CollectFrames     int               `json:"collect_frames"`
	VRRMinHz          float64           `json:"vrr_min_hz"`
	VRRMaxHz          float64           `json:"vrr_max_hz"`
}

// CellKey derives the content hash for a cell. ok is false when the cell
// is not cacheable: no PolicyKey, or a Config carrying live objects — a
// Source replaces the stochastic sampler with caller state, and Trace /
// Metrics expect side effects that a cache hit would silently skip.
func CellKey(c Cell) (key string, ok bool) {
	cfg := c.Config
	if c.PolicyKey == "" || cfg.Source != nil || cfg.Trace != nil || cfg.Metrics != nil {
		return "", false
	}
	b, err := json.Marshal(keyMaterial{
		Schema:            cacheSchema,
		PolicyKey:         c.PolicyKey,
		Label:             cfg.Label,
		Workload:          cfg.Workload,
		Scale:             cfg.Scale,
		Net:               cfg.Net,
		Duration:          cfg.Duration,
		Warmup:            cfg.Warmup,
		Seed:              cfg.Seed,
		RawFrameBytes:     cfg.RawFrameBytes,
		RefreshHz:         cfg.RefreshHz,
		MemConfig:         cfg.MemConfig,
		PowerConfig:       cfg.PowerConfig,
		DisableContention: cfg.DisableContention,
		CollectFrames:     cfg.CollectFrames,
		VRRMinHz:          cfg.VRRMinHz,
		VRRMaxHz:          cfg.VRRMaxHz,
	})
	if err != nil {
		return "", false
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), true
}
