package sched

import (
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"odr/internal/obs"
	"odr/internal/pictor"
	"odr/internal/pipeline"
	"odr/internal/regulator"
)

func TestMapReturnsInIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		const n = 1000
		out := Map(workers, n, func(i int) int { return i * i })
		if len(out) != n {
			t.Fatalf("workers=%d: got %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapRunsEachIndexOnce(t *testing.T) {
	const n = 517
	var calls [n]atomic.Int32
	Map(7, n, func(i int) struct{} {
		calls[i].Add(1)
		// Uneven work so stealing actually happens.
		if i%13 == 0 {
			time.Sleep(time.Millisecond)
		}
		return struct{}{}
	})
	for i := range calls {
		if c := calls[i].Load(); c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if out := Map(4, 0, func(i int) int { return i }); out != nil {
		t.Fatalf("Map over 0 items = %v, want nil", out)
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		if p := recover(); p != "boom" {
			t.Fatalf("recovered %v, want boom", p)
		}
	}()
	Map(4, 100, func(i int) int {
		if i == 37 {
			panic("boom")
		}
		return i
	})
	t.Fatal("Map returned without panicking")
}

// testCell is a tiny but real simulation cell.
func testCell(seed int64) Cell {
	g := pictor.PlatformGroup{Platform: pictor.PrivateCloud, Resolution: pictor.R720p}
	return Cell{
		PolicyKey: "NoReg",
		Config: pipeline.Config{
			Label:    "NoReg",
			Workload: pictor.IM.Params(),
			Scale:    pictor.Scale(g.Platform, g.Resolution),
			Net:      pictor.Network(g.Platform),
			Policy:   func(ctx *regulator.Ctx) regulator.Policy { return regulator.NewNoReg(ctx) },
			Duration: 2 * time.Second,
			Seed:     seed,
		},
	}
}

func TestCellKeyDiscriminates(t *testing.T) {
	a, ok := CellKey(testCell(1))
	if !ok || a == "" {
		t.Fatal("cell unexpectedly uncacheable")
	}
	b, _ := CellKey(testCell(2))
	if a == b {
		t.Fatal("different seeds hash to the same key")
	}
	c := testCell(1)
	c.PolicyKey = "ODR@60"
	d, _ := CellKey(c)
	if a == d {
		t.Fatal("different policies hash to the same key")
	}
	e, _ := CellKey(testCell(1))
	if a != e {
		t.Fatal("identical cells hash differently")
	}
}

func TestCellKeyUncacheable(t *testing.T) {
	c := testCell(1)
	c.PolicyKey = ""
	if _, ok := CellKey(c); ok {
		t.Fatal("cell without PolicyKey must be uncacheable")
	}
	c = testCell(1)
	c.Config.Trace = &obs.Tracer{}
	if _, ok := CellKey(c); ok {
		t.Fatal("cell with Trace must be uncacheable")
	}
	c = testCell(1)
	c.Config.Metrics = obs.NewRegistry()
	if _, ok := CellKey(c); ok {
		t.Fatal("cell with Metrics must be uncacheable")
	}
}

func TestCacheRoundTrip(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	r := New(Options{Workers: 2, Cache: cache, Metrics: reg})
	cell := testCell(1)

	cold := r.RunOne(cell)
	run, hits, misses := r.Stats()
	if run != 1 || hits != 0 || misses != 1 {
		t.Fatalf("cold stats = run %d hits %d misses %d", run, hits, misses)
	}

	warm := r.RunOne(cell)
	run, hits, misses = r.Stats()
	if run != 1 || hits != 1 || misses != 1 {
		t.Fatalf("warm stats = run %d hits %d misses %d", run, hits, misses)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("cached result differs from the computed one")
	}
}

func TestCacheCorruptArtifactIsAMiss(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cell := testCell(1)
	key, _ := CellKey(cell)
	if err := os.WriteFile(filepath.Join(dir, key+".json"), []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get(key); ok {
		t.Fatal("corrupt artifact served as a hit")
	}
	// The runner must fall back to computing and then repair the entry.
	r := New(Options{Workers: 1, Cache: cache})
	res := r.RunOne(cell)
	if res == nil {
		t.Fatal("nil result")
	}
	if got, ok := cache.Get(key); !ok || !reflect.DeepEqual(got, res) {
		t.Fatal("repaired cache entry missing or wrong")
	}
}

func TestNilCacheAndNilCounters(t *testing.T) {
	// No cache, no metrics: everything must still work.
	r := New(Options{Workers: 2})
	out := r.Run([]Cell{testCell(1), testCell(2)})
	if len(out) != 2 || out[0] == nil || out[1] == nil {
		t.Fatalf("results = %v", out)
	}
	if run, _, _ := r.Stats(); run != 2 {
		t.Fatalf("cells run = %d, want 2", run)
	}
}
