package realrt

import (
	"sync"
	"testing"
	"time"
)

func TestNowAdvances(t *testing.T) {
	dom := NewDomain()
	a := dom.Now()
	time.Sleep(10 * time.Millisecond)
	if b := dom.Now(); b <= a {
		t.Fatalf("Now did not advance: %v then %v", a, b)
	}
}

func TestNewDomainAt(t *testing.T) {
	start := time.Now().Add(-time.Hour)
	dom := NewDomainAt(start)
	if dom.Now() < time.Hour {
		t.Fatalf("Now = %v, want >= 1h", dom.Now())
	}
}

func TestWaitBroadcast(t *testing.T) {
	dom := NewDomain()
	c := dom.NewCond()
	w := NewWaiter(dom)
	done := make(chan struct{})
	go func() {
		dom.Locker().Lock()
		w.Wait(c)
		dom.Locker().Unlock()
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	dom.Locker().Lock()
	c.Broadcast()
	dom.Locker().Unlock()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Wait not woken by Broadcast")
	}
}

func TestWaitTimeoutExpires(t *testing.T) {
	dom := NewDomain()
	c := dom.NewCond()
	w := NewWaiter(dom)
	dom.Locker().Lock()
	start := time.Now()
	got := w.WaitTimeout(c, 20*time.Millisecond)
	dom.Locker().Unlock()
	if got {
		t.Fatal("WaitTimeout reported a signal that never came")
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("WaitTimeout returned too early")
	}
}

func TestWaitTimeoutSignaled(t *testing.T) {
	dom := NewDomain()
	c := dom.NewCond()
	w := NewWaiter(dom)
	go func() {
		time.Sleep(10 * time.Millisecond)
		dom.Locker().Lock()
		c.Broadcast()
		dom.Locker().Unlock()
	}()
	dom.Locker().Lock()
	got := w.WaitTimeout(c, 5*time.Second)
	dom.Locker().Unlock()
	if !got {
		t.Fatal("WaitTimeout missed the broadcast")
	}
}

func TestNoLostWakeups(t *testing.T) {
	// Hammer one cond with many waiters and broadcasters; every waiter
	// whose predicate is satisfied must eventually return.
	dom := NewDomain()
	c := dom.NewCond()
	var ready int
	var wg sync.WaitGroup
	const n = 32
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			w := NewWaiter(dom)
			dom.Locker().Lock()
			for ready == 0 {
				w.Wait(c)
			}
			dom.Locker().Unlock()
		}()
	}
	time.Sleep(5 * time.Millisecond)
	dom.Locker().Lock()
	ready = 1
	c.Broadcast()
	dom.Locker().Unlock()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("some waiters never woke (lost wakeup)")
	}
}

func TestSleepNonPositive(t *testing.T) {
	w := NewWaiter(NewDomain())
	start := time.Now()
	w.Sleep(-time.Second)
	w.Sleep(0)
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("non-positive Sleep slept")
	}
}
