// Package realrt adapts real wall-clock time and goroutine synchronization
// to the core.Domain/core.Waiter runtime abstraction, so the ODR components
// in package core run unmodified inside the real-time streaming stack.
package realrt

import (
	"sync"
	"time"

	"odr/internal/core"
)

// Domain is a core.Domain for real goroutines. All components of one
// pipeline share the domain's mutex; conds are channel-based broadcast
// conditions that support timeouts.
type Domain struct {
	mu    sync.Mutex
	start time.Time
}

// NewDomain returns a domain whose Now() is measured from time.Now().
func NewDomain() *Domain { return &Domain{start: time.Now()} }

// NewDomainAt returns a domain whose Now() is measured from start; useful
// for aligning several domains (server and client) to one epoch.
func NewDomainAt(start time.Time) *Domain { return &Domain{start: start} }

// Now implements core.Domain.
func (d *Domain) Now() time.Duration { return time.Since(d.start) }

// Locker implements core.Domain.
func (d *Domain) Locker() sync.Locker { return &d.mu }

// NewCond implements core.Domain.
func (d *Domain) NewCond() core.Cond {
	return &cond{dom: d, ch: make(chan struct{})}
}

// cond is a broadcast condition with timeout support, built on the
// closed-channel broadcast idiom. Broadcast must be called while holding the
// domain lock (as documented on core.Cond); Wait/WaitTimeout take a snapshot
// of the generation channel under the lock before releasing it, so wakeups
// are never lost.
type cond struct {
	dom *Domain
	ch  chan struct{}
}

// Broadcast wakes all current waiters. Caller must hold the domain lock.
func (c *cond) Broadcast() {
	close(c.ch)
	c.ch = make(chan struct{})
}

// Waiter is a core.Waiter for real goroutines. It is stateless and can be
// shared, but by convention each goroutine creates its own.
type Waiter struct {
	dom *Domain
}

// NewWaiter returns a waiter bound to dom.
func NewWaiter(dom *Domain) *Waiter { return &Waiter{dom: dom} }

// Sleep implements core.Waiter.
func (w *Waiter) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// Wait implements core.Waiter. The caller must hold the domain lock.
func (w *Waiter) Wait(c core.Cond) {
	cc := c.(*cond)
	snapshot := cc.ch
	w.dom.mu.Unlock()
	<-snapshot
	w.dom.mu.Lock()
}

// WaitTimeout implements core.Waiter. The caller must hold the domain lock.
func (w *Waiter) WaitTimeout(c core.Cond, d time.Duration) bool {
	cc := c.(*cond)
	snapshot := cc.ch
	w.dom.mu.Unlock()
	timer := time.NewTimer(d)
	defer timer.Stop()
	var signaled bool
	select {
	case <-snapshot:
		signaled = true
	case <-timer.C:
		// Even if the timer fired, a broadcast may have raced in; prefer
		// reporting the signal so predicates are re-checked promptly.
		select {
		case <-snapshot:
			signaled = true
		default:
		}
	}
	w.dom.mu.Lock()
	return signaled
}

// Compile-time interface checks.
var (
	_ core.Domain = (*Domain)(nil)
	_ core.Waiter = (*Waiter)(nil)
)
