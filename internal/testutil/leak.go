// Package testutil holds helpers shared across the repo's test suites.
package testutil

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// VerifyNoLeaks snapshots the goroutine count and registers a cleanup that
// fails the test if the count has not returned to (at or below) that baseline
// shortly after the test body finishes. Call it first in the test, before
// starting any servers, clients, or wrapped conns:
//
//	func TestX(t *testing.T) {
//		testutil.VerifyNoLeaks(t)
//		...
//	}
//
// Blocked readers, forwarders that missed a close signal, and reconnect loops
// that outlive Stop() all show up here; on failure the full goroutine stack
// dump is logged so the leaked goroutine is identifiable.
func VerifyNoLeaks(t testing.TB) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(10 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			runtime.Gosched()
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d goroutines, baseline %d\n%s", n, base, buf)
	})
}

// LeakSnapshot captures the current goroutine count for non-test callers
// (the soak harness); Check polls until the count returns to the baseline or
// the timeout passes, returning an error with a stack dump on failure.
type LeakSnapshot struct {
	base int
}

// Snapshot records the current goroutine count as the baseline.
func Snapshot() LeakSnapshot { return LeakSnapshot{base: runtime.NumGoroutine()} }

// Check waits up to timeout for the goroutine count to return to the
// baseline. It returns nil on success and an error carrying a full stack dump
// otherwise.
func (s LeakSnapshot) Check(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var n int
	for {
		n = runtime.NumGoroutine()
		if n <= s.base {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	return fmt.Errorf("goroutine leak: %d goroutines, baseline %d\n%s", n, s.base, buf)
}
