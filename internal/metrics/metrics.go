// Package metrics provides the measurement instruments used throughout the
// ODR reproduction: event-rate (FPS) counters, windowed rate tracking,
// sample distributions with percentile queries, CDFs and latency recorders.
//
// All instruments work on virtual time (time.Duration since simulation start)
// and are equally usable with real wall-clock offsets in the stream stack.
package metrics

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"
)

// Dist accumulates float64 samples and answers summary-statistic and
// percentile queries. The zero value is ready to use.
type Dist struct {
	samples []float64
	sorted  bool
	sum     float64
}

// Add appends a sample.
func (d *Dist) Add(v float64) {
	d.samples = append(d.samples, v)
	d.sorted = false
	d.sum += v
}

// AddZeros appends n zero samples in one bulk grow. RateCounter uses it to
// materialize idle windows counted arithmetically, so a long idle gap costs
// one append instead of one Add call per window.
func (d *Dist) AddZeros(n int) {
	if n <= 0 {
		return
	}
	d.samples = append(d.samples, make([]float64, n)...)
	d.sorted = false
}

// N returns the number of samples.
func (d *Dist) N() int { return len(d.samples) }

// Sum returns the sum of all samples.
func (d *Dist) Sum() float64 { return d.sum }

// Mean returns the arithmetic mean (0 when empty).
func (d *Dist) Mean() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	return d.sum / float64(len(d.samples))
}

// Var returns the population variance (0 when fewer than 2 samples).
func (d *Dist) Var() float64 {
	n := len(d.samples)
	if n < 2 {
		return 0
	}
	m := d.Mean()
	var ss float64
	for _, v := range d.samples {
		dd := v - m
		ss += dd * dd
	}
	return ss / float64(n)
}

// Stddev returns the population standard deviation.
func (d *Dist) Stddev() float64 { return math.Sqrt(d.Var()) }

// CoV returns the coefficient of variation (stddev/mean, 0 if mean is 0).
func (d *Dist) CoV() float64 {
	m := d.Mean()
	if m == 0 {
		return 0
	}
	return d.Stddev() / m
}

func (d *Dist) ensureSorted() {
	if !d.sorted {
		sort.Float64s(d.samples)
		d.sorted = true
	}
}

// Min returns the smallest sample (0 when empty).
func (d *Dist) Min() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.ensureSorted()
	return d.samples[0]
}

// Max returns the largest sample (0 when empty).
func (d *Dist) Max() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.ensureSorted()
	return d.samples[len(d.samples)-1]
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. Empty distributions return 0.
func (d *Dist) Percentile(p float64) float64 {
	n := len(d.samples)
	if n == 0 {
		return 0
	}
	d.ensureSorted()
	if n == 1 {
		return d.samples[0]
	}
	if p <= 0 {
		return d.samples[0]
	}
	if p >= 100 {
		return d.samples[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return d.samples[lo]
	}
	frac := rank - float64(lo)
	return d.samples[lo]*(1-frac) + d.samples[hi]*frac
}

// Box summarises the distribution the way the paper's box plots do:
// 1 %ile, 25 %ile, mean, 75 %ile and 99 %ile.
type Box struct {
	P1, P25, Mean, P75, P99 float64
}

// Box returns the five-number summary used by Figures 10 and 11.
func (d *Dist) Box() Box {
	return Box{
		P1:   d.Percentile(1),
		P25:  d.Percentile(25),
		Mean: d.Mean(),
		P75:  d.Percentile(75),
		P99:  d.Percentile(99),
	}
}

// String formats the box in a compact fixed order.
func (b Box) String() string {
	return fmt.Sprintf("p1=%.1f p25=%.1f mean=%.1f p75=%.1f p99=%.1f",
		b.P1, b.P25, b.Mean, b.P75, b.P99)
}

// CDF returns (value, cumulative-probability) pairs at each distinct sample,
// suitable for plotting Fig. 4a-style CDFs.
func (d *Dist) CDF() (values, probs []float64) {
	n := len(d.samples)
	if n == 0 {
		return nil, nil
	}
	d.ensureSorted()
	for i, v := range d.samples {
		if i > 0 && v == values[len(values)-1] {
			probs[len(probs)-1] = float64(i+1) / float64(n)
			continue
		}
		values = append(values, v)
		probs = append(probs, float64(i+1)/float64(n))
	}
	return values, probs
}

// FractionBelow returns the fraction of samples strictly below x.
func (d *Dist) FractionBelow(x float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.ensureSorted()
	i := sort.SearchFloat64s(d.samples, x)
	return float64(i) / float64(len(d.samples))
}

// distJSON is the persisted form of Dist. Samples keep their current
// in-memory order and the incrementally accumulated sum is stored verbatim:
// Var iterates samples in slice order without sorting, so a decoded Dist
// must replay the exact float-summation order of the original to answer
// every query bit-for-bit (the result-cache determinism guarantee).
//
// Samples are stored as the raw little-endian float64 bytes (base64 in the
// JSON text): bit-exact by construction, and far cheaper to parse than a
// JSON array with tens of thousands of decimal floats — cache-hit latency
// is dominated by this decode.
type distJSON struct {
	Samples []byte  `json:"samples_f64le"`
	Sum     float64 `json:"sum"`
	Sorted  bool    `json:"sorted,omitempty"`
}

// MarshalJSON encodes the distribution preserving sample order, sum and
// sort state, so that a decoded Dist reproduces every query exactly.
func (d Dist) MarshalJSON() ([]byte, error) {
	raw := make([]byte, 8*len(d.samples))
	for i, v := range d.samples {
		binary.LittleEndian.PutUint64(raw[8*i:], math.Float64bits(v))
	}
	return json.Marshal(distJSON{Samples: raw, Sum: d.sum, Sorted: d.sorted})
}

// UnmarshalJSON decodes a distribution written by MarshalJSON.
func (d *Dist) UnmarshalJSON(b []byte) error {
	var j distJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	if len(j.Samples)%8 != 0 {
		return fmt.Errorf("metrics: sample blob is %d bytes, not a float64 multiple", len(j.Samples))
	}
	d.samples = make([]float64, len(j.Samples)/8)
	for i := range d.samples {
		d.samples[i] = math.Float64frombits(binary.LittleEndian.Uint64(j.Samples[8*i:]))
	}
	d.sum = j.Sum
	d.sorted = j.Sorted
	return nil
}

// Samples returns a copy of the samples in insertion-independent (sorted)
// order.
func (d *Dist) Samples() []float64 {
	d.ensureSorted()
	out := make([]float64, len(d.samples))
	copy(out, d.samples)
	return out
}

// RateCounter measures an event rate (e.g. FPS) over fixed windows. Every
// Tick records one event; Rates() returns one rate sample per completed
// window, which is how the paper reports "FPS for each small period
// (e.g. 200 ms)" (§5.2).
type RateCounter struct {
	window      time.Duration
	windowStart time.Duration
	inWindow    int
	total       int64
	rates       Dist
	// pendingZeros counts fully idle windows closed arithmetically; they
	// are materialized as zero-rate samples when Rates or Flush is called,
	// keeping Tick O(1) across arbitrarily long idle gaps.
	pendingZeros int64
	firstTick    time.Duration
	lastTick     time.Duration
	ticked       bool
}

// NewRateCounter returns a counter with the given averaging window.
func NewRateCounter(window time.Duration) *RateCounter {
	if window <= 0 {
		window = 200 * time.Millisecond
	}
	return &RateCounter{window: window}
}

// Tick records one event at time now. Cost is O(1) regardless of how much
// time elapsed since the previous event: idle windows are closed
// arithmetically, not one by one.
func (r *RateCounter) Tick(now time.Duration) {
	if !r.ticked {
		if r.window <= 0 {
			r.window = 200 * time.Millisecond
		}
		r.ticked = true
		r.firstTick = now
		r.windowStart = now
	}
	r.closeElapsed(now)
	r.inWindow++
	r.total++
	r.lastTick = now
}

// closeElapsed closes every window fully elapsed at now: one rate sample for
// the window that was in progress, plus a count of the fully idle windows
// after it. The idle windows become zero-rate samples lazily (Rates/Flush),
// so the cost here does not depend on the gap length.
func (r *RateCounter) closeElapsed(now time.Duration) {
	if now < r.windowStart+r.window {
		return
	}
	n := int64((now - r.windowStart) / r.window) // whole windows elapsed, >= 1
	r.rates.Add(float64(r.inWindow) / r.window.Seconds())
	r.inWindow = 0
	r.pendingZeros += n - 1
	r.windowStart += time.Duration(n) * r.window
}

// Flush closes the current partial window accounting up to time now and
// materializes any idle windows. Call once at the end of a run before
// reading Rates; calling it with a stale (earlier) now is a no-op for
// window accounting.
func (r *RateCounter) Flush(now time.Duration) {
	if !r.ticked {
		return
	}
	r.closeElapsed(now)
	r.materializeZeros()
}

func (r *RateCounter) materializeZeros() {
	if r.pendingZeros > 0 {
		r.rates.AddZeros(int(r.pendingZeros))
		r.pendingZeros = 0
	}
}

// Total returns the total number of events recorded.
func (r *RateCounter) Total() int64 { return r.total }

// MeanRate returns total events divided by the span from the first tick to
// now (the long-run average FPS).
func (r *RateCounter) MeanRate(now time.Duration) float64 {
	if !r.ticked || now <= r.firstTick {
		return 0
	}
	return float64(r.total) / (now - r.firstTick).Seconds()
}

// Rates returns the per-window rate distribution (call Flush first).
func (r *RateCounter) Rates() *Dist {
	r.materializeZeros()
	return &r.rates
}

// LatencyRecorder accumulates latency samples (e.g. motion-to-photon) as a
// distribution in milliseconds.
type LatencyRecorder struct {
	d Dist
}

// Record adds one latency sample.
func (l *LatencyRecorder) Record(lat time.Duration) {
	l.d.Add(float64(lat) / float64(time.Millisecond))
}

// Dist returns the underlying distribution (values in milliseconds).
func (l *LatencyRecorder) Dist() *Dist { return &l.d }

// MeanMs returns the mean latency in milliseconds.
func (l *LatencyRecorder) MeanMs() float64 { return l.d.Mean() }

// GapStat tracks the paper's FPS-gap metric: the difference between two
// rates (cloud rendering FPS minus client decoding FPS) sampled per window.
type GapStat struct {
	d Dist
}

// AddWindow records one window's gap given the two windowed rates.
func (g *GapStat) AddWindow(renderFPS, clientFPS float64) {
	gap := renderFPS - clientFPS
	if gap < 0 {
		gap = 0
	}
	g.d.Add(gap)
}

// Mean returns the average gap across windows.
func (g *GapStat) Mean() float64 { return g.d.Mean() }

// Max returns the largest windowed gap.
func (g *GapStat) Max() float64 { return g.d.Max() }

// Dist exposes the gap distribution.
func (g *GapStat) Dist() *Dist { return &g.d }
