package metrics

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
)

// The result cache persists Dists as JSON, so the round trip must preserve
// the distribution bit-for-bit — including the insertion order of samples
// and the incremental sum, which Var() and Stddev() observe directly.
func TestDistJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var d Dist
	for i := 0; i < 500; i++ {
		d.Add(rng.NormFloat64()*10 + 50)
	}
	b, err := json.Marshal(&d)
	if err != nil {
		t.Fatal(err)
	}
	var got Dist
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, got) {
		t.Fatal("Dist JSON round trip not bit-exact before sorting")
	}
	if d.Stddev() != got.Stddev() || d.Var() != got.Var() {
		t.Fatal("variance differs after round trip")
	}
	// Sorting state must round-trip too: query once, re-marshal.
	_ = d.Percentile(99)
	b2, err := json.Marshal(&d)
	if err != nil {
		t.Fatal(err)
	}
	var got2 Dist
	if err := json.Unmarshal(b2, &got2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, got2) {
		t.Fatal("Dist JSON round trip not bit-exact after sorting")
	}
	if d.Percentile(50) != got2.Percentile(50) {
		t.Fatal("percentile differs after round trip")
	}
}

func TestDistJSONEmpty(t *testing.T) {
	var d Dist
	b, err := json.Marshal(&d)
	if err != nil {
		t.Fatal(err)
	}
	var got Dist
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.N() != 0 || got.Mean() != 0 {
		t.Fatalf("empty Dist round trip: N=%d", got.N())
	}
}
