package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDistEmpty(t *testing.T) {
	var d Dist
	if d.N() != 0 || d.Mean() != 0 || d.Min() != 0 || d.Max() != 0 || d.Percentile(50) != 0 {
		t.Fatal("empty Dist should return zeros")
	}
	if v, p := d.CDF(); v != nil || p != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestDistBasicStats(t *testing.T) {
	var d Dist
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		d.Add(v)
	}
	if d.N() != 8 {
		t.Fatalf("N = %d", d.N())
	}
	if !almostEq(d.Mean(), 5, 1e-9) {
		t.Fatalf("Mean = %v", d.Mean())
	}
	if !almostEq(d.Stddev(), 2, 1e-9) {
		t.Fatalf("Stddev = %v", d.Stddev())
	}
	if d.Min() != 2 || d.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", d.Min(), d.Max())
	}
}

func TestDistPercentiles(t *testing.T) {
	var d Dist
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 100}, {50, 50.5}, {25, 25.75}, {99, 99.01},
	}
	for _, c := range cases {
		if got := d.Percentile(c.p); !almostEq(got, c.want, 0.011) {
			t.Errorf("P%v = %v, want ~%v", c.p, got, c.want)
		}
	}
}

func TestDistPercentileSingleSample(t *testing.T) {
	var d Dist
	d.Add(42)
	for _, p := range []float64{0, 1, 50, 99, 100} {
		if d.Percentile(p) != 42 {
			t.Fatalf("P%v = %v, want 42", p, d.Percentile(p))
		}
	}
}

func TestDistAddAfterPercentileQuery(t *testing.T) {
	var d Dist
	d.Add(3)
	d.Add(1)
	_ = d.Percentile(50) // forces sort
	d.Add(2)
	if d.Min() != 1 || d.Max() != 3 || !almostEq(d.Percentile(50), 2, 1e-9) {
		t.Fatal("Dist corrupted by interleaved Add and query")
	}
}

func TestDistCDFMonotone(t *testing.T) {
	var d Dist
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		d.Add(rng.NormFloat64())
	}
	vals, probs := d.CDF()
	if len(vals) != len(probs) {
		t.Fatal("length mismatch")
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] <= vals[i-1] {
			t.Fatal("CDF values not strictly increasing")
		}
		if probs[i] <= probs[i-1] {
			t.Fatal("CDF probs not increasing")
		}
	}
	if !almostEq(probs[len(probs)-1], 1, 1e-9) {
		t.Fatalf("final prob = %v", probs[len(probs)-1])
	}
}

func TestDistCDFDuplicates(t *testing.T) {
	var d Dist
	for _, v := range []float64{1, 1, 1, 2} {
		d.Add(v)
	}
	vals, probs := d.CDF()
	if len(vals) != 2 || vals[0] != 1 || !almostEq(probs[0], 0.75, 1e-9) {
		t.Fatalf("CDF with duplicates = %v %v", vals, probs)
	}
}

func TestFractionBelow(t *testing.T) {
	var d Dist
	for i := 0; i < 10; i++ {
		d.Add(float64(i))
	}
	if got := d.FractionBelow(5); !almostEq(got, 0.5, 1e-9) {
		t.Fatalf("FractionBelow(5) = %v", got)
	}
	if got := d.FractionBelow(100); !almostEq(got, 1, 1e-9) {
		t.Fatalf("FractionBelow(100) = %v", got)
	}
	if got := d.FractionBelow(-1); got != 0 {
		t.Fatalf("FractionBelow(-1) = %v", got)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestDistPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var d Dist
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			d.Add(v)
		}
		pa := float64(a) / 255 * 100
		pb := float64(b) / 255 * 100
		if pa > pb {
			pa, pb = pb, pa
		}
		va, vb := d.Percentile(pa), d.Percentile(pb)
		return va <= vb && va >= d.Min() && vb <= d.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: mean lies within [min, max].
func TestDistMeanBoundedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var d Dist
		n := 0
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				continue
			}
			d.Add(v)
			n++
		}
		if n == 0 {
			return true
		}
		return d.Mean() >= d.Min()-1e-6 && d.Mean() <= d.Max()+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRateCounterSteadyRate(t *testing.T) {
	r := NewRateCounter(200 * time.Millisecond)
	// 60 events/sec for 2 seconds.
	for i := 0; i < 120; i++ {
		r.Tick(time.Duration(i) * time.Second / 60)
	}
	r.Flush(2 * time.Second)
	if r.Total() != 120 {
		t.Fatalf("Total = %d", r.Total())
	}
	if m := r.MeanRate(2 * time.Second); !almostEq(m, 60, 1) {
		t.Fatalf("MeanRate = %v, want ~60", m)
	}
	rates := r.Rates()
	if rates.N() < 9 {
		t.Fatalf("windows = %d, want >= 9", rates.N())
	}
	if !almostEq(rates.Mean(), 60, 2) {
		t.Fatalf("windowed mean = %v, want ~60", rates.Mean())
	}
}

func TestRateCounterIdleWindowsAreZero(t *testing.T) {
	r := NewRateCounter(100 * time.Millisecond)
	r.Tick(0)
	r.Tick(10 * time.Millisecond)
	// long silence, then one more
	r.Tick(950 * time.Millisecond)
	r.Flush(time.Second)
	rates := r.Rates()
	if rates.N() != 10 {
		t.Fatalf("windows = %d, want 10", rates.N())
	}
	if rates.Min() != 0 {
		t.Fatalf("expected idle zero-rate windows, min = %v", rates.Min())
	}
}

func TestRateCounterNoTicks(t *testing.T) {
	r := NewRateCounter(100 * time.Millisecond)
	r.Flush(time.Second)
	if r.Rates().N() != 0 || r.MeanRate(time.Second) != 0 {
		t.Fatal("counter with no ticks should report nothing")
	}
}

func TestRateCounterDefaultWindow(t *testing.T) {
	r := NewRateCounter(0)
	if r.window != 200*time.Millisecond {
		t.Fatalf("default window = %v", r.window)
	}
}

func TestLatencyRecorder(t *testing.T) {
	var l LatencyRecorder
	l.Record(10 * time.Millisecond)
	l.Record(30 * time.Millisecond)
	if !almostEq(l.MeanMs(), 20, 1e-9) {
		t.Fatalf("MeanMs = %v", l.MeanMs())
	}
	if l.Dist().N() != 2 {
		t.Fatalf("N = %d", l.Dist().N())
	}
}

func TestGapStatClampsNegative(t *testing.T) {
	var g GapStat
	g.AddWindow(50, 60) // client faster than render: gap clamps to 0
	g.AddWindow(100, 60)
	if g.Max() != 40 {
		t.Fatalf("Max = %v", g.Max())
	}
	if !almostEq(g.Mean(), 20, 1e-9) {
		t.Fatalf("Mean = %v", g.Mean())
	}
}

func TestBoxSummary(t *testing.T) {
	var d Dist
	for i := 1; i <= 1000; i++ {
		d.Add(float64(i))
	}
	b := d.Box()
	if !(b.P1 < b.P25 && b.P25 < b.Mean && b.Mean < b.P75 && b.P75 < b.P99) {
		t.Fatalf("box out of order: %+v", b)
	}
	if b.String() == "" {
		t.Fatal("empty String()")
	}
}
