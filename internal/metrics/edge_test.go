package metrics

import (
	"testing"
	"time"
)

// TestRateCounterLongIdleGapExactZeros checks the arithmetic window closing:
// a one-hour silence in a 100 ms-window counter must produce exactly the
// right number of zero-rate samples.
func TestRateCounterLongIdleGapExactZeros(t *testing.T) {
	r := NewRateCounter(100 * time.Millisecond)
	r.Tick(0)
	gap := time.Hour
	r.Tick(gap) // lands exactly on a window boundary
	r.Flush(gap + 100*time.Millisecond)
	rates := r.Rates()
	// Windows: [0,100ms) with 1 event, then 35999 idle, then [1h,1h+100ms)
	// with 1 event = 36001 samples.
	if want := 36001; rates.N() != want {
		t.Fatalf("windows = %d, want %d", rates.N(), want)
	}
	var zeros, tens int
	for _, v := range rates.Samples() {
		switch v {
		case 0:
			zeros++
		case 10: // 1 event / 0.1 s
			tens++
		}
	}
	if zeros != 35999 || tens != 2 {
		t.Fatalf("zeros = %d tens = %d, want 35999 and 2", zeros, tens)
	}
}

// TestRateCounterTickIsO1 demonstrates the fix: with a 1 ns window, a
// one-hour gap spans 3.6e12 windows; closing them one by one would hang, so
// Tick must return immediately and still count the events.
func TestRateCounterTickIsO1(t *testing.T) {
	r := NewRateCounter(time.Nanosecond)
	r.Tick(0)
	done := make(chan struct{})
	go func() {
		r.Tick(time.Hour)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Tick across 3.6e12 idle windows did not return: still O(gap/window)")
	}
	if r.Total() != 2 {
		t.Fatalf("Total = %d", r.Total())
	}
}

// TestRateCounterOutOfOrderFlush checks a Flush at a timestamp earlier than
// the accounting point is harmless, and a later Flush still completes the
// windows.
func TestRateCounterOutOfOrderFlush(t *testing.T) {
	r := NewRateCounter(100 * time.Millisecond)
	for i := 0; i < 10; i++ {
		r.Tick(time.Duration(i) * 50 * time.Millisecond) // 0..450ms
	}
	r.Flush(200 * time.Millisecond) // stale: accounting is already at 400ms
	n := r.Rates().N()
	r.Flush(0) // even staler
	if got := r.Rates().N(); got != n {
		t.Fatalf("stale Flush changed windows: %d -> %d", n, got)
	}
	r.Flush(500 * time.Millisecond)
	if got := r.Rates().N(); got != 5 {
		t.Fatalf("windows after final flush = %d, want 5", got)
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d", r.Total())
	}
	// Flushing twice at the same time adds nothing.
	r.Flush(500 * time.Millisecond)
	if got := r.Rates().N(); got != 5 {
		t.Fatalf("repeated Flush changed windows: %d", got)
	}
}

// TestRateCounterZeroValueUsable checks the zero value (window 0) picks the
// default window on first use instead of dividing by zero or spinning.
func TestRateCounterZeroValueUsable(t *testing.T) {
	var r RateCounter
	r.Tick(0)
	r.Tick(time.Second)
	r.Flush(time.Second)
	if r.Total() != 2 {
		t.Fatalf("Total = %d", r.Total())
	}
	if r.Rates().N() == 0 {
		t.Fatal("no windows closed over a 1 s span")
	}
}

// TestRateCounterRatesMaterializesWithoutFlush checks Rates() alone reflects
// arithmetically closed idle windows (Flush only adds the final partial
// accounting).
func TestRateCounterRatesMaterializesWithoutFlush(t *testing.T) {
	r := NewRateCounter(100 * time.Millisecond)
	r.Tick(0)
	r.Tick(time.Second) // closes [0,100ms) and 9 idle windows
	if got := r.Rates().N(); got != 10 {
		t.Fatalf("windows before Flush = %d, want 10", got)
	}
	if r.Rates().Min() != 0 {
		t.Fatal("idle windows missing from Rates before Flush")
	}
}

// TestGapStatEmpty checks the zero value reports zeros rather than NaN.
func TestGapStatEmpty(t *testing.T) {
	var g GapStat
	if g.Mean() != 0 || g.Max() != 0 || g.Dist().N() != 0 {
		t.Fatalf("empty GapStat: mean=%v max=%v n=%d", g.Mean(), g.Max(), g.Dist().N())
	}
}

// TestLatencyRecorderSubMillisecond checks sub-ms samples keep fractional
// precision in the millisecond-valued distribution.
func TestLatencyRecorderSubMillisecond(t *testing.T) {
	var l LatencyRecorder
	l.Record(250 * time.Microsecond)
	l.Record(750 * time.Microsecond)
	if m := l.MeanMs(); m != 0.5 {
		t.Fatalf("MeanMs = %v, want 0.5", m)
	}
	if mx := l.Dist().Max(); mx != 0.75 {
		t.Fatalf("Max = %v, want 0.75", mx)
	}
}

// TestDistAddZeros checks the bulk-append keeps statistics consistent with
// individual Adds.
func TestDistAddZeros(t *testing.T) {
	var a, b Dist
	a.Add(5)
	a.AddZeros(4)
	b.Add(5)
	for i := 0; i < 4; i++ {
		b.Add(0)
	}
	if a.N() != b.N() || a.Sum() != b.Sum() || a.Mean() != b.Mean() {
		t.Fatalf("AddZeros diverges: n=%d/%d sum=%v/%v", a.N(), b.N(), a.Sum(), b.Sum())
	}
	if a.Percentile(50) != b.Percentile(50) {
		t.Fatalf("median diverges: %v vs %v", a.Percentile(50), b.Percentile(50))
	}
	a.AddZeros(0)
	a.AddZeros(-3)
	if a.N() != 5 {
		t.Fatalf("AddZeros(<=0) changed N: %d", a.N())
	}
}
