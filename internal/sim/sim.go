// Package sim provides a deterministic, process-based discrete-event
// simulation kernel.
//
// A simulation is driven by an Env, which owns a virtual clock and an event
// calendar. Simulation logic is written as ordinary Go functions ("processes")
// spawned with Env.Spawn. Processes run as goroutines, but the kernel
// cooperatively schedules them so that exactly one process executes at a time
// and all interleavings are a deterministic function of the event calendar.
// Processes advance virtual time by sleeping (Proc.Sleep) and synchronize with
// each other through Signals (condition variables) and Queues (bounded FIFOs).
//
// The kernel is the substrate for the cloud-3D pipeline simulator: every
// pipeline stage (renderer, server proxy, network, client) is a process, and
// the paper's multi-buffers are built on Signals.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is virtual time, expressed as a duration since the start of the
// simulation. Using time.Duration keeps arithmetic and formatting familiar.
type Time = time.Duration

// MaxTime is the largest representable virtual time.
const MaxTime Time = math.MaxInt64

// event is an entry in the calendar. Exactly one of proc / fn is set.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among simultaneous events
	proc *Proc  // process to resume
	fn   func() // callback to invoke in kernel context
	// canceled events stay in the heap but are skipped when popped.
	canceled *bool
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Env is a simulation environment: a virtual clock plus an event calendar.
// An Env is not safe for concurrent use; all interaction must happen either
// before Run, from within processes, or after Run returns.
type Env struct {
	now     Time
	seq     uint64
	events  eventQueue
	yield   chan struct{} // a running process hands control back here
	stopped bool          // set during Shutdown; parked procs panic-unwind
	live    int           // number of spawned, not-yet-finished processes
	parked  map[*Proc]struct{}
}

// NewEnv returns an empty environment with the clock at zero.
func NewEnv() *Env {
	return &Env{
		yield:  make(chan struct{}),
		parked: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// schedule enqueues ev at time at (>= now).
func (e *Env) schedule(at Time, ev *event) {
	if at < e.now {
		at = e.now
	}
	ev.at = at
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.events, ev)
}

// After schedules fn to run in kernel context after delay d. It may be called
// before Run or from within a process.
func (e *Env) After(d Time, fn func()) {
	e.schedule(e.now+d, &event{fn: fn})
}

// At schedules fn to run in kernel context at absolute virtual time t.
func (e *Env) At(t Time, fn func()) {
	e.schedule(t, &event{fn: fn})
}

// Proc is a simulation process. All methods must be called from within the
// process's own function.
type Proc struct {
	env     *Env
	name    string
	wake    chan struct{}
	started bool // the kernel has resumed this process at least once
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Env returns the environment this process runs in.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// errStopped unwinds process goroutines during Env.Shutdown.
type stoppedError struct{}

func (stoppedError) Error() string { return "sim: environment shut down" }

// Spawn creates a process and schedules it to start at the current virtual
// time. fn runs cooperatively: it executes until it blocks in Sleep/Wait or
// returns.
func (e *Env) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{env: e, name: name, wake: make(chan struct{})}
	e.live++
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(stoppedError); !ok {
					panic(r)
				}
			}
			e.live--
			e.yield <- struct{}{}
		}()
		<-p.wake // wait for the kernel to start us
		if e.stopped {
			panic(stoppedError{})
		}
		fn(p)
	}()
	e.schedule(e.now, &event{proc: p})
	return p
}

// resumeProc hands control to p and waits for it to park or finish.
func (e *Env) resumeProc(p *Proc) {
	delete(e.parked, p)
	p.started = true
	p.wake <- struct{}{}
	<-e.yield
}

// park transfers control back to the kernel until the process is resumed.
func (p *Proc) park() {
	e := p.env
	e.parked[p] = struct{}{}
	e.yield <- struct{}{}
	<-p.wake
	if e.stopped {
		panic(stoppedError{})
	}
}

// Sleep suspends the process for virtual duration d (d <= 0 yields: the
// process is rescheduled at the current time, running after other events
// already scheduled for this instant).
func (p *Proc) Sleep(d Time) {
	p.env.schedule(p.env.now+d, &event{proc: p})
	p.park()
}

// Run executes events until the calendar is exhausted or the clock reaches
// until, whichever comes first. It returns the virtual time at which it
// stopped. Run may be called repeatedly to continue a simulation.
func (e *Env) Run(until Time) Time {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.canceled != nil && *ev.canceled {
			continue
		}
		if ev.at > until {
			// Put it back for a later Run call.
			heap.Push(&e.events, ev)
			e.now = until
			return e.now
		}
		e.now = ev.at
		switch {
		case ev.proc != nil:
			e.resumeProc(ev.proc)
		case ev.fn != nil:
			ev.fn()
		}
	}
	if until != MaxTime && e.now < until {
		// The calendar drained before the horizon: idle time passes.
		e.now = until
	}
	return e.now
}

// RunAll executes events until the calendar is exhausted.
func (e *Env) RunAll() Time { return e.Run(MaxTime) }

// Shutdown unwinds every parked process goroutine. It must be called after
// Run returns (never from within a process). The environment is unusable
// afterwards. Calling Shutdown is optional but keeps long test runs from
// accumulating parked goroutines.
func (e *Env) Shutdown() {
	e.stopped = true
	for p := range e.parked {
		delete(e.parked, p)
		p.started = true
		p.wake <- struct{}{}
		<-e.yield
	}
	// Processes scheduled in the calendar but never started also hold
	// goroutines waiting on wake. Stale events for processes that already
	// ran (canceled timeout arms, events for procs just unwound above)
	// must be skipped — their goroutines are gone.
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.proc != nil && !ev.proc.started {
			ev.proc.started = true
			ev.proc.wake <- struct{}{}
			<-e.yield
		}
	}
}

// Live reports the number of spawned processes that have not finished.
func (e *Env) Live() int { return e.live }

// String implements fmt.Stringer for debugging.
func (e *Env) String() string {
	return fmt.Sprintf("sim.Env{now: %v, pending: %d, live: %d}", e.now, len(e.events), e.live)
}
