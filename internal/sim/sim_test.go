package sim

import (
	"testing"
	"time"
)

const ms = time.Millisecond

func TestEnvStartsAtZero(t *testing.T) {
	e := NewEnv()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestAfterRunsInOrder(t *testing.T) {
	e := NewEnv()
	var got []int
	e.After(3*ms, func() { got = append(got, 3) })
	e.After(1*ms, func() { got = append(got, 1) })
	e.After(2*ms, func() { got = append(got, 2) })
	e.RunAll()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3*ms {
		t.Fatalf("Now() = %v, want 3ms", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEnv()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(5*ms, func() { got = append(got, i) })
	}
	e.RunAll()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("simultaneous events not FIFO: %v", got)
		}
	}
}

func TestRunUntilStopsClock(t *testing.T) {
	e := NewEnv()
	fired := false
	e.After(10*ms, func() { fired = true })
	end := e.Run(4 * ms)
	if end != 4*ms || fired {
		t.Fatalf("Run(4ms) = %v, fired=%v; want 4ms, false", end, fired)
	}
	// Continue: the event must still fire.
	e.Run(20 * ms)
	if !fired || e.Now() != 20*ms {
		t.Fatalf("after second Run: fired=%v now=%v", fired, e.Now())
	}
}

func TestProcSleepAdvancesTime(t *testing.T) {
	e := NewEnv()
	var wake Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(7 * ms)
		wake = p.Now()
	})
	e.RunAll()
	if wake != 7*ms {
		t.Fatalf("woke at %v, want 7ms", wake)
	}
}

func TestProcSleepZeroYields(t *testing.T) {
	e := NewEnv()
	var order []string
	e.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Sleep(0)
		order = append(order, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	e.RunAll()
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSignalBroadcastWakesAllWaiters(t *testing.T) {
	e := NewEnv()
	s := NewSignal(e)
	woken := 0
	for i := 0; i < 5; i++ {
		e.Spawn("waiter", func(p *Proc) {
			p.Wait(s)
			woken++
		})
	}
	e.Spawn("caster", func(p *Proc) {
		p.Sleep(10 * ms)
		if s.Waiters() != 5 {
			t.Errorf("Waiters() = %d, want 5", s.Waiters())
		}
		s.Broadcast()
	})
	e.RunAll()
	if woken != 5 {
		t.Fatalf("woken = %d, want 5", woken)
	}
	if e.Now() != 10*ms {
		t.Fatalf("Now() = %v, want 10ms", e.Now())
	}
}

func TestSignalNoStaleWakeup(t *testing.T) {
	// A Broadcast before anyone waits must not wake later waiters.
	e := NewEnv()
	s := NewSignal(e)
	s.Broadcast()
	timedOut := false
	e.Spawn("late", func(p *Proc) {
		if !p.WaitTimeout(s, 5*ms) {
			timedOut = true
		}
	})
	e.RunAll()
	if !timedOut {
		t.Fatal("late waiter was woken by a stale broadcast")
	}
}

func TestWaitTimeoutSignalArrivesFirst(t *testing.T) {
	e := NewEnv()
	s := NewSignal(e)
	var signaled bool
	var at Time
	e.Spawn("waiter", func(p *Proc) {
		signaled = p.WaitTimeout(s, 10*ms)
		at = p.Now()
	})
	e.After(3*ms, func() { s.Broadcast() })
	e.RunAll()
	if !signaled || at != 3*ms {
		t.Fatalf("signaled=%v at=%v, want true at 3ms", signaled, at)
	}
	// The canceled timeout event must not disturb later simulation.
	if e.Now() != 10*ms && e.Now() != 3*ms {
		t.Fatalf("unexpected end time %v", e.Now())
	}
}

func TestWaitTimeoutExpires(t *testing.T) {
	e := NewEnv()
	s := NewSignal(e)
	var signaled bool
	var at Time
	e.Spawn("waiter", func(p *Proc) {
		signaled = p.WaitTimeout(s, 10*ms)
		at = p.Now()
	})
	// Broadcast after the timeout: must not re-wake the waiter.
	e.After(20*ms, func() { s.Broadcast() })
	e.RunAll()
	if signaled || at != 10*ms {
		t.Fatalf("signaled=%v at=%v, want false at 10ms", signaled, at)
	}
}

func TestWaitTimeoutZeroDuration(t *testing.T) {
	e := NewEnv()
	s := NewSignal(e)
	ok := true
	e.Spawn("waiter", func(p *Proc) {
		ok = p.WaitTimeout(s, 0)
	})
	e.RunAll()
	if ok {
		t.Fatal("WaitTimeout(0) should time out immediately")
	}
}

func TestLateBroadcastAfterTimeoutDoesNotCorruptOtherWaiters(t *testing.T) {
	e := NewEnv()
	s := NewSignal(e)
	results := map[string]bool{}
	e.Spawn("short", func(p *Proc) {
		results["short"] = p.WaitTimeout(s, 1*ms)
	})
	e.Spawn("long", func(p *Proc) {
		results["long"] = p.WaitTimeout(s, 100*ms)
	})
	e.After(5*ms, func() { s.Broadcast() })
	e.RunAll()
	if results["short"] {
		t.Fatal("short waiter should have timed out")
	}
	if !results["long"] {
		t.Fatal("long waiter should have been signaled at 5ms")
	}
}

func TestQueuePutGetFIFO(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e, 0)
	var got []int
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			q.Put(p, i)
			p.Sleep(1 * ms)
		}
	})
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, q.Get(p))
		}
	})
	e.RunAll()
	for i := 0; i < 5; i++ {
		if got[i] != i {
			t.Fatalf("got %v, want FIFO 0..4", got)
		}
	}
	if q.Puts() != 5 || q.Gets() != 5 {
		t.Fatalf("puts=%d gets=%d, want 5/5", q.Puts(), q.Gets())
	}
}

func TestQueueBlocksWhenFull(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e, 2)
	var thirdPutAt Time
	e.Spawn("producer", func(p *Proc) {
		q.Put(p, 1)
		q.Put(p, 2)
		q.Put(p, 3) // blocks until the consumer takes one
		thirdPutAt = p.Now()
	})
	e.Spawn("consumer", func(p *Proc) {
		p.Sleep(10 * ms)
		q.Get(p)
	})
	e.RunAll()
	if thirdPutAt != 10*ms {
		t.Fatalf("third Put completed at %v, want 10ms", thirdPutAt)
	}
}

func TestQueueGetBlocksWhenEmpty(t *testing.T) {
	e := NewEnv()
	q := NewQueue[string](e, 0)
	var gotAt Time
	var got string
	e.Spawn("consumer", func(p *Proc) {
		got = q.Get(p)
		gotAt = p.Now()
	})
	e.Spawn("producer", func(p *Proc) {
		p.Sleep(4 * ms)
		q.Put(p, "x")
	})
	e.RunAll()
	if got != "x" || gotAt != 4*ms {
		t.Fatalf("got %q at %v, want \"x\" at 4ms", got, gotAt)
	}
}

func TestQueuePutDropCountsDrops(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e, 1)
	if !q.PutDrop(1) {
		t.Fatal("first PutDrop should succeed")
	}
	if q.PutDrop(2) {
		t.Fatal("second PutDrop should drop")
	}
	if q.Drops() != 1 {
		t.Fatalf("Drops() = %d, want 1", q.Drops())
	}
	if v, ok := q.TryGet(); !ok || v != 1 {
		t.Fatalf("TryGet = %v,%v", v, ok)
	}
}

func TestQueueFilterRemovesAndUnblocks(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e, 3)
	q.PutDrop(1)
	q.PutDrop(2)
	q.PutDrop(3)
	var putAt Time
	e.Spawn("producer", func(p *Proc) {
		q.Put(p, 4) // blocked: queue full
		putAt = p.Now()
	})
	e.Spawn("filter", func(p *Proc) {
		p.Sleep(2 * ms)
		removed := q.Filter(func(v int) bool { return v == 2 })
		if len(removed) != 2 || removed[0] != 1 || removed[1] != 3 {
			t.Errorf("removed = %v, want [1 3]", removed)
		}
	})
	e.RunAll()
	if putAt != 2*ms {
		t.Fatalf("blocked Put completed at %v, want 2ms", putAt)
	}
	if q.Len() != 2 { // 2 and 4
		t.Fatalf("Len = %d, want 2", q.Len())
	}
}

func TestQueueDrain(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e, 0)
	q.PutDrop(1)
	q.PutDrop(2)
	out := q.Drain()
	if len(out) != 2 || out[0] != 1 || out[1] != 2 {
		t.Fatalf("Drain = %v", out)
	}
	if q.Len() != 0 {
		t.Fatalf("Len after Drain = %d", q.Len())
	}
}

func TestQueueMaxDepth(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e, 0)
	for i := 0; i < 7; i++ {
		q.PutDrop(i)
	}
	q.TryGet()
	q.PutDrop(99)
	if q.MaxDepth() != 7 {
		t.Fatalf("MaxDepth = %d, want 7", q.MaxDepth())
	}
}

func TestShutdownUnwindsParkedProcs(t *testing.T) {
	e := NewEnv()
	s := NewSignal(e)
	e.Spawn("foreverWait", func(p *Proc) { p.Wait(s) })
	e.Spawn("foreverSleep", func(p *Proc) { p.Sleep(time.Hour) })
	e.Run(10 * ms)
	if e.Live() != 2 {
		t.Fatalf("Live = %d, want 2", e.Live())
	}
	e.Shutdown()
	if e.Live() != 0 {
		t.Fatalf("Live after Shutdown = %d, want 0", e.Live())
	}
}

func TestShutdownBeforeProcStarts(t *testing.T) {
	e := NewEnv()
	e.Spawn("neverStarted", func(p *Proc) { t.Error("process body must not run") })
	e.Shutdown()
	if e.Live() != 0 {
		t.Fatalf("Live = %d, want 0", e.Live())
	}
}

func TestTwoStagePipelineTiming(t *testing.T) {
	// A producer that takes 10ms per item and a consumer that takes 15ms
	// per item, connected by a capacity-1 queue, must converge to the
	// consumer's rate (backpressure).
	e := NewEnv()
	q := NewQueue[int](e, 1)
	consumed := 0
	e.Spawn("producer", func(p *Proc) {
		for i := 0; ; i++ {
			p.Sleep(10 * ms)
			q.Put(p, i)
		}
	})
	e.Spawn("consumer", func(p *Proc) {
		for {
			q.Get(p)
			p.Sleep(15 * ms)
			consumed++
		}
	})
	e.Run(1500 * ms)
	e.Shutdown()
	// Steady state: one item per 15ms => ~100 items in 1.5s.
	if consumed < 95 || consumed > 100 {
		t.Fatalf("consumed = %d, want ~99", consumed)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEnv()
		s := NewSignal(e)
		q := NewQueue[Time](e, 2)
		var log []Time
		e.Spawn("a", func(p *Proc) {
			for i := 0; i < 20; i++ {
				p.Sleep(3 * ms)
				q.Put(p, p.Now())
				s.Broadcast()
			}
		})
		e.Spawn("b", func(p *Proc) {
			for i := 0; i < 20; i++ {
				v := q.Get(p)
				log = append(log, v, p.Now())
				p.WaitTimeout(s, 2*ms)
			}
		})
		e.RunAll()
		e.Shutdown()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestAtSchedulesAbsolute(t *testing.T) {
	e := NewEnv()
	var at Time
	e.At(25*ms, func() { at = e.Now() })
	e.RunAll()
	if at != 25*ms {
		t.Fatalf("At fired at %v, want 25ms", at)
	}
}

func TestAtInPastClampsToNow(t *testing.T) {
	e := NewEnv()
	var at Time
	e.After(10*ms, func() {
		e.At(2*ms, func() { at = e.Now() }) // in the past: runs now
	})
	e.RunAll()
	if at != 10*ms {
		t.Fatalf("past At fired at %v, want clamped to 10ms", at)
	}
}
