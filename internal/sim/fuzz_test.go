package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestKernelRandomScheduleProperty drives a randomized mesh of processes,
// signals and queues and checks the global kernel invariants: time never
// goes backwards, every run is deterministic for its seed, and the kernel
// neither deadlocks nor leaks processes after Shutdown.
func TestKernelRandomScheduleProperty(t *testing.T) {
	run := func(seed int64) (events int, final Time) {
		// NOTE: a t.Fatalf inside a process goroutine would runtime.Goexit
		// without completing the kernel handshake and deadlock the test, so
		// invariant violations are recorded and reported afterwards.
		var violation string
		rng := rand.New(rand.NewSource(seed))
		e := NewEnv()
		nSignals := 2 + rng.Intn(3)
		signals := make([]*Signal, nSignals)
		for i := range signals {
			signals[i] = NewSignal(e)
		}
		nQueues := 1 + rng.Intn(3)
		queues := make([]*Queue[int], nQueues)
		for i := range queues {
			queues[i] = NewQueue[int](e, rng.Intn(4)) // some unbounded
		}
		var count int
		var lastNow Time
		check := func(p *Proc) {
			if p.Now() < lastNow && violation == "" {
				violation = fmt.Sprintf("time went backwards: %v after %v", p.Now(), lastNow)
			}
			lastNow = p.Now()
			count++
		}
		nProcs := 3 + rng.Intn(6)
		for i := 0; i < nProcs; i++ {
			// Each process gets its own deterministic op stream.
			prng := rand.New(rand.NewSource(seed*31 + int64(i)))
			e.Spawn("p", func(p *Proc) {
				for op := 0; op < 40; op++ {
					check(p)
					switch prng.Intn(6) {
					case 0:
						p.Sleep(time.Duration(prng.Intn(5000)) * time.Microsecond)
					case 1:
						p.WaitTimeout(signals[prng.Intn(nSignals)], time.Duration(1+prng.Intn(3000))*time.Microsecond)
					case 2:
						signals[prng.Intn(nSignals)].Broadcast()
					case 3:
						queues[prng.Intn(nQueues)].PutDrop(op)
					case 4:
						queues[prng.Intn(nQueues)].TryGet()
					case 5:
						q := queues[prng.Intn(nQueues)]
						// Bounded wait so the mesh cannot deadlock the test.
						if v, ok := q.TryGet(); ok {
							_ = v
						} else {
							p.WaitTimeout(signals[prng.Intn(nSignals)], time.Millisecond)
						}
					}
				}
			})
		}
		end := e.Run(2 * time.Second)
		e.Shutdown()
		if violation != "" {
			t.Fatal(violation)
		}
		if live := e.Live(); live != 0 {
			t.Fatalf("Shutdown leaked %d processes", live)
		}
		return count, end
	}
	f := func(seed int64) bool {
		c1, t1 := run(seed)
		c2, t2 := run(seed)
		return c1 == c2 && t1 == t2 && c1 > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownAfterWaitTimeoutStaleEvents is the regression test for the
// Shutdown deadlock: canceled timeout arms and already-unwound processes
// must not be re-woken from the calendar.
func TestShutdownAfterWaitTimeoutStaleEvents(t *testing.T) {
	e := NewEnv()
	s := NewSignal(e)
	// Waiter whose signal arm wins, leaving a canceled timeout in the heap.
	e.Spawn("signaled", func(p *Proc) {
		p.WaitTimeout(s, time.Hour)
		p.Sleep(time.Hour) // then parks with a live event
	})
	e.Spawn("caster", func(p *Proc) {
		p.Sleep(time.Millisecond)
		s.Broadcast()
	})
	done := make(chan struct{})
	go func() {
		e.Run(10 * time.Millisecond)
		e.Shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown deadlocked on stale calendar events")
	}
	if e.Live() != 0 {
		t.Fatalf("leaked %d processes", e.Live())
	}
}

// TestSameTimestampBroadcastAndTimeout is the regression test for the stray
// resume bug: a Broadcast and a WaitTimeout expiry at the same virtual
// instant, with the broadcaster's event ordered first, must not leave a
// stray resume that spuriously wakes (or deadlocks on) the process later.
func TestSameTimestampBroadcastAndTimeout(t *testing.T) {
	e := NewEnv()
	s := NewSignal(e)
	var sleptUntil Time
	// Order matters: the broadcaster spawns first so its t=1ms resume has a
	// smaller sequence number than the waiter's timeout event.
	e.Spawn("broadcaster", func(p *Proc) {
		p.Sleep(time.Millisecond)
		s.Broadcast()
	})
	e.Spawn("waiter", func(p *Proc) {
		p.WaitTimeout(s, time.Millisecond)
		// The stray broadcast-resume used to interrupt this sleep (or, if
		// the process had finished, deadlock the kernel).
		p.Sleep(time.Hour)
		sleptUntil = p.Now()
	})
	done := make(chan struct{})
	go func() {
		e.RunAll()
		e.Shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("kernel deadlocked on a stray resume event")
	}
	if want := time.Millisecond + time.Hour; sleptUntil != want {
		t.Fatalf("sleep was cut short at %v (spurious wake), want %v", sleptUntil, want)
	}
}
