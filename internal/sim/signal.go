package sim

// Signal is a broadcast condition variable for simulation processes.
// Processes wait on it with Proc.Wait / Proc.WaitTimeout; any code running in
// kernel context (a process or an After callback) wakes all waiters with
// Broadcast. Because the kernel is single-threaded there are no lost-wakeup
// hazards, but as with any condition variable, waiters must re-check their
// predicate in a loop.
type Signal struct {
	env     *Env
	waiters []*signalWaiter
}

type signalWaiter struct {
	proc     *Proc
	canceled bool // set when the wait was satisfied some other way (timeout)
	signaled bool // set by Broadcast before resuming
	// done, when non-nil, is shared with the waiter's other wake-up arm
	// (the timeout event): whichever arm resumes the process first sets it,
	// canceling the other arm's already-scheduled event. Without this, a
	// Broadcast and a timeout landing on the same timestamp would leave a
	// stray resume in the calendar that later wakes the process spuriously
	// (or wakes a finished process, deadlocking the kernel).
	done *bool
}

// NewSignal returns a Signal bound to e.
func NewSignal(e *Env) *Signal { return &Signal{env: e} }

// Broadcast wakes every process currently waiting on s. Waiters resume at the
// current virtual time, in the order they started waiting, after the caller
// next parks.
func (s *Signal) Broadcast() {
	waiters := s.waiters
	s.waiters = nil
	for _, w := range waiters {
		if w.canceled || (w.done != nil && *w.done) {
			continue
		}
		w.signaled = true
		s.env.schedule(s.env.now, &event{proc: w.proc, canceled: w.done})
	}
}

// Waiters reports how many processes are currently waiting on s.
func (s *Signal) Waiters() int {
	n := 0
	for _, w := range s.waiters {
		if !w.canceled {
			n++
		}
	}
	return n
}

// Wait blocks the process until the next Broadcast on s.
func (p *Proc) Wait(s *Signal) {
	w := &signalWaiter{proc: p}
	s.waiters = append(s.waiters, w)
	p.park()
}

// WaitTimeout blocks the process until the next Broadcast on s or until d has
// elapsed, whichever comes first. It reports whether the signal fired (true)
// or the timeout expired (false). A Broadcast and a timeout scheduled for the
// same instant resolve in calendar order.
func (p *Proc) WaitTimeout(s *Signal, d Time) bool {
	if d <= 0 {
		// Degenerate wait: check nothing, time out immediately, but still
		// yield so that the caller observes consistent scheduling.
		p.Sleep(0)
		return false
	}
	done := false
	w := &signalWaiter{proc: p, done: &done}
	s.waiters = append(s.waiters, w)
	p.env.schedule(p.env.now+d, &event{proc: p, canceled: &done})
	p.park()
	// Whichever arm woke us, cancel the other arm's pending event (both
	// share the done flag) and detach from the signal.
	done = true
	w.canceled = true
	return w.signaled
}
