package sim

// Queue is a bounded FIFO connecting simulation processes. Put blocks while
// the queue is full; Get blocks while it is empty. A capacity of 0 means
// unbounded. Queue also tracks high-water mark and drop counts for the
// non-blocking TryPut/PutDrop variants, which model tail-drop network buffers.
type Queue[T any] struct {
	env      *Env
	items    []T
	capacity int
	notEmpty *Signal
	notFull  *Signal

	// Stats.
	puts     int64
	gets     int64
	drops    int64
	maxDepth int
}

// NewQueue returns a queue with the given capacity (0 = unbounded).
func NewQueue[T any](e *Env, capacity int) *Queue[T] {
	return &Queue[T]{
		env:      e,
		capacity: capacity,
		notEmpty: NewSignal(e),
		notFull:  NewSignal(e),
	}
}

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Cap returns the capacity (0 = unbounded).
func (q *Queue[T]) Cap() int { return q.capacity }

// Puts returns the number of successfully enqueued items.
func (q *Queue[T]) Puts() int64 { return q.puts }

// Gets returns the number of dequeued items.
func (q *Queue[T]) Gets() int64 { return q.gets }

// Drops returns the number of items rejected by PutDrop.
func (q *Queue[T]) Drops() int64 { return q.drops }

// MaxDepth returns the high-water mark of the queue length.
func (q *Queue[T]) MaxDepth() int { return q.maxDepth }

func (q *Queue[T]) full() bool {
	return q.capacity > 0 && len(q.items) >= q.capacity
}

func (q *Queue[T]) push(v T) {
	q.items = append(q.items, v)
	q.puts++
	if len(q.items) > q.maxDepth {
		q.maxDepth = len(q.items)
	}
	q.notEmpty.Broadcast()
}

// Put enqueues v, blocking the process while the queue is full.
func (q *Queue[T]) Put(p *Proc, v T) {
	for q.full() {
		p.Wait(q.notFull)
	}
	q.push(v)
}

// TryPut enqueues v if there is room and reports whether it did.
func (q *Queue[T]) TryPut(v T) bool {
	if q.full() {
		return false
	}
	q.push(v)
	return true
}

// PutDrop enqueues v if there is room; otherwise it drops v and increments
// the drop counter. It reports whether v was enqueued. This models tail-drop
// buffering (e.g. a network socket buffer).
func (q *Queue[T]) PutDrop(v T) bool {
	if q.TryPut(v) {
		return true
	}
	q.drops++
	return false
}

// Get dequeues the oldest item, blocking the process while the queue is
// empty.
func (q *Queue[T]) Get(p *Proc) T {
	for len(q.items) == 0 {
		p.Wait(q.notEmpty)
	}
	return q.pop()
}

// TryGet dequeues the oldest item if one is buffered.
func (q *Queue[T]) TryGet() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	return q.pop(), true
}

func (q *Queue[T]) pop() T {
	v := q.items[0]
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	q.gets++
	q.notFull.Broadcast()
	return v
}

// Drain removes and returns all buffered items without blocking.
func (q *Queue[T]) Drain() []T {
	out := q.items
	q.items = nil
	q.gets += int64(len(out))
	if len(out) > 0 {
		q.notFull.Broadcast()
	}
	return out
}

// Filter removes every buffered item for which keep returns false and
// returns the removed items (oldest first). Used by PriorityFrame to drop
// obsolete frames that are queued but not yet sent.
func (q *Queue[T]) Filter(keep func(T) bool) []T {
	var kept []T
	var removed []T
	for _, v := range q.items {
		if keep(v) {
			kept = append(kept, v)
		} else {
			removed = append(removed, v)
		}
	}
	q.items = kept
	if len(removed) > 0 {
		q.notFull.Broadcast()
	}
	return removed
}
