package sim

import (
	"testing"
	"time"
)

// BenchmarkEventThroughput measures raw calendar throughput: schedule+fire
// of kernel callbacks.
func BenchmarkEventThroughput(b *testing.B) {
	e := NewEnv()
	fired := 0
	for i := 0; i < b.N; i++ {
		e.After(time.Duration(i), func() { fired++ })
	}
	b.ResetTimer()
	e.RunAll()
	if fired != b.N {
		b.Fatalf("fired %d of %d", fired, b.N)
	}
}

// BenchmarkProcessSwitch measures the cost of one process suspend/resume
// round trip (the goroutine ping-pong at the heart of the kernel).
func BenchmarkProcessSwitch(b *testing.B) {
	e := NewEnv()
	e.Spawn("spinner", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	e.RunAll()
	e.Shutdown()
}

// BenchmarkQueueHandoff measures producer/consumer handoff through a
// bounded queue — the pattern every pipeline stage pair uses.
func BenchmarkQueueHandoff(b *testing.B) {
	e := NewEnv()
	q := NewQueue[int](e, 2)
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Put(p, i)
		}
	})
	received := 0
	e.Spawn("consumer", func(p *Proc) {
		for received < b.N {
			q.Get(p)
			received++
		}
	})
	b.ResetTimer()
	e.RunAll()
	e.Shutdown()
	if received != b.N {
		b.Fatalf("received %d of %d", received, b.N)
	}
}

// BenchmarkSignalBroadcast measures waking a set of waiters.
func BenchmarkSignalBroadcast(b *testing.B) {
	e := NewEnv()
	s := NewSignal(e)
	const waiters = 8
	for w := 0; w < waiters; w++ {
		e.Spawn("waiter", func(p *Proc) {
			for i := 0; i < b.N; i++ {
				p.Wait(s)
			}
		})
	}
	e.Spawn("caster", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
			s.Broadcast()
		}
	})
	b.ResetTimer()
	e.RunAll()
	e.Shutdown()
}
