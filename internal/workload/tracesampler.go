package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"time"

	"odr/internal/frame"
)

// TraceSampler replays a recorded frame-cost trace (e.g. captured from a
// real game with the Pictor instrumentation, or exported from a simulator
// run with odrtrace). The trace loops when exhausted, so any run duration
// can be driven from a finite recording. Input arrivals remain Poisson at
// the configured rate (input timing is a property of the player, not the
// trace).
type TraceSampler struct {
	trace     []Costs
	idx       int
	inputRate float64
	rng       *rand.Rand
	nextID    frame.InputID
}

// NewTraceSampler returns a sampler replaying trace in order, looping
// forever. inputRate is the Poisson user-input rate per second (0 = no
// inputs); seed drives the input process.
func NewTraceSampler(trace []Costs, inputRate float64, seed int64) (*TraceSampler, error) {
	if len(trace) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	for i, c := range trace {
		if c.Render <= 0 || c.Encode <= 0 || c.Decode <= 0 || c.Copy <= 0 || c.Bytes <= 0 {
			return nil, fmt.Errorf("workload: trace entry %d has non-positive fields: %+v", i, c)
		}
	}
	return &TraceSampler{
		trace:     trace,
		inputRate: inputRate,
		rng:       rand.New(rand.NewSource(seed)),
	}, nil
}

// NextFrame implements Source by replaying the trace cyclically.
func (t *TraceSampler) NextFrame() Costs {
	c := t.trace[t.idx]
	t.idx = (t.idx + 1) % len(t.trace)
	return c
}

// NextInputGap implements Source.
func (t *TraceSampler) NextInputGap() time.Duration {
	if t.inputRate <= 0 {
		return math.MaxInt64
	}
	gap := t.rng.ExpFloat64() / t.inputRate
	const minGap = 0.040
	if gap < minGap {
		gap = minGap
	}
	return time.Duration(gap * float64(time.Second))
}

// NextInputID implements Source.
func (t *TraceSampler) NextInputID() frame.InputID {
	t.nextID++
	return t.nextID
}

// Len returns the trace length in frames.
func (t *TraceSampler) Len() int { return len(t.trace) }

// ParseTraceCSV reads a frame-cost trace from CSV. The header must contain
// the columns render_ms, copy_ms, encode_ms, decode_ms and bytes (extra
// columns are ignored; order is free). A complexity column is optional.
func ParseTraceCSV(r io.Reader) ([]Costs, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: reading trace header: %w", err)
	}
	col := map[string]int{}
	for i, name := range header {
		col[name] = i
	}
	for _, need := range []string{"render_ms", "copy_ms", "encode_ms", "decode_ms", "bytes"} {
		if _, ok := col[need]; !ok {
			return nil, fmt.Errorf("workload: trace is missing column %q", need)
		}
	}
	ms := func(rec []string, name string) (time.Duration, error) {
		v, err := strconv.ParseFloat(rec[col[name]], 64)
		if err != nil {
			return 0, fmt.Errorf("workload: bad %s value %q: %w", name, rec[col[name]], err)
		}
		return time.Duration(v * float64(time.Millisecond)), nil
	}
	var out []Costs
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: reading trace row: %w", err)
		}
		var c Costs
		if c.Render, err = ms(rec, "render_ms"); err != nil {
			return nil, err
		}
		if c.Copy, err = ms(rec, "copy_ms"); err != nil {
			return nil, err
		}
		if c.Encode, err = ms(rec, "encode_ms"); err != nil {
			return nil, err
		}
		if c.Decode, err = ms(rec, "decode_ms"); err != nil {
			return nil, err
		}
		b, err := strconv.Atoi(rec[col["bytes"]])
		if err != nil {
			return nil, fmt.Errorf("workload: bad bytes value %q: %w", rec[col["bytes"]], err)
		}
		c.Bytes = b
		c.Complexity = 1
		if ci, ok := col["complexity"]; ok {
			if v, err := strconv.ParseFloat(rec[ci], 64); err == nil {
				c.Complexity = v
			}
		}
		out = append(out, c)
	}
	return out, nil
}

// Record captures n frames from any Source into a replayable trace.
func Record(src Source, n int) []Costs {
	out := make([]Costs, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, src.NextFrame())
	}
	return out
}

// Compile-time check.
var (
	_ Source = (*Sampler)(nil)
	_ Source = (*TraceSampler)(nil)
)
