package workload

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func sampleTrace() []Costs {
	ms := func(f float64) time.Duration { return time.Duration(f * float64(time.Millisecond)) }
	return []Costs{
		{Render: ms(4), Copy: ms(1), Encode: ms(8), Decode: ms(3), Bytes: 30000, Complexity: 1},
		{Render: ms(6), Copy: ms(1), Encode: ms(9), Decode: ms(3), Bytes: 32000, Complexity: 1.1},
		{Render: ms(20), Copy: ms(1), Encode: ms(25), Decode: ms(4), Bytes: 45000, Complexity: 1.4},
	}
}

func TestTraceSamplerLoops(t *testing.T) {
	ts, err := NewTraceSampler(sampleTrace(), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Len() != 3 {
		t.Fatalf("Len = %d", ts.Len())
	}
	for round := 0; round < 3; round++ {
		for i, want := range sampleTrace() {
			got := ts.NextFrame()
			if got != want {
				t.Fatalf("round %d frame %d = %+v, want %+v", round, i, got, want)
			}
		}
	}
}

func TestTraceSamplerValidates(t *testing.T) {
	if _, err := NewTraceSampler(nil, 3, 1); err == nil {
		t.Fatal("empty trace accepted")
	}
	bad := sampleTrace()
	bad[1].Encode = 0
	if _, err := NewTraceSampler(bad, 3, 1); err == nil {
		t.Fatal("non-positive cost accepted")
	}
}

func TestTraceSamplerInputs(t *testing.T) {
	ts, err := NewTraceSampler(sampleTrace(), 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	var total time.Duration
	n := 2000
	for i := 0; i < n; i++ {
		g := ts.NextInputGap()
		if g < 40*time.Millisecond {
			t.Fatal("refractory period violated")
		}
		total += g
	}
	rate := float64(n) / total.Seconds()
	if rate < 2.5 || rate > 5 {
		t.Fatalf("input rate %.1f, want ~3.7", rate)
	}
	if ts.NextInputID() != 1 || ts.NextInputID() != 2 {
		t.Fatal("ids not sequential")
	}
}

func TestParseTraceCSV(t *testing.T) {
	csvText := `frame,render_ms,copy_ms,encode_ms,decode_ms,bytes,complexity
0,4.5,1.1,8.2,3.0,30000,1.0
1,6.25,1.0,9.5,3.1,32000,1.2
`
	trace, err := ParseTraceCSV(strings.NewReader(csvText))
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 2 {
		t.Fatalf("parsed %d rows", len(trace))
	}
	if trace[0].Render != 4500*time.Microsecond || trace[0].Bytes != 30000 {
		t.Fatalf("row 0 = %+v", trace[0])
	}
	if trace[1].Complexity != 1.2 {
		t.Fatalf("complexity = %v", trace[1].Complexity)
	}
}

func TestParseTraceCSVErrors(t *testing.T) {
	cases := []string{
		"",                         // no header
		"render_ms,copy_ms\n1,2\n", // missing columns
		"render_ms,copy_ms,encode_ms,decode_ms,bytes\nx,1,1,1,100\n", // bad float
		"render_ms,copy_ms,encode_ms,decode_ms,bytes\n1,1,1,1,zz\n",  // bad int
	}
	for i, c := range cases {
		if _, err := ParseTraceCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRecordFromSampler(t *testing.T) {
	src := NewSampler(testParams(), RefScale, 9)
	trace := Record(src, 50)
	if len(trace) != 50 {
		t.Fatalf("recorded %d", len(trace))
	}
	ts, err := NewTraceSampler(trace, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ts.NextFrame() != trace[0] {
		t.Fatal("replay differs from recording")
	}
}

func TestRoundTripCSVThroughTraceSampler(t *testing.T) {
	// Record from the stochastic sampler, format as CSV, parse, replay.
	src := NewSampler(testParams(), RefScale, 11)
	rec := Record(src, 20)
	var sb strings.Builder
	sb.WriteString("render_ms,copy_ms,encode_ms,decode_ms,bytes\n")
	msStr := func(d time.Duration) string {
		return fmt.Sprintf("%.6f", float64(d)/float64(time.Millisecond))
	}
	for _, c := range rec {
		fmt.Fprintf(&sb, "%s,%s,%s,%s,%d\n",
			msStr(c.Render), msStr(c.Copy), msStr(c.Encode), msStr(c.Decode), c.Bytes)
	}
	parsed, err := ParseTraceCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 20 {
		t.Fatalf("parsed %d rows", len(parsed))
	}
	for i := range parsed {
		// CSV milliseconds round-trip within a microsecond.
		if d := parsed[i].Render - rec[i].Render; d > time.Microsecond || d < -time.Microsecond {
			t.Fatalf("row %d render drifted by %v", i, d)
		}
	}
}
