// Package workload models the frame-processing behaviour of interactive 3D
// applications: per-frame render/copy/encode/decode costs, encoded frame
// sizes, scene-complexity drift and user-input arrivals.
//
// It substitutes for the real Pictor benchmarks (SuperTuxKart, 0 A.D.,
// Red Eclipse, DoTA2, InMind, IMHOTEP) that the paper runs on real GPUs.
// The substitution is justified because FPS-regulation dynamics depend only
// on the *timing* of the processing steps: their means, their heavy-tailed
// variation (Fig. 4: 80-90 % of frames below 16.6 ms, 10-20 % spiking well
// above) and their slow drift. The regulators never look at pixels.
//
// The model for each per-frame cost is
//
//	cost = base × complexity(t) × lognormal(σ) × spike,
//
// where complexity(t) is a mean-reverting random walk (scene load drifting
// as the player moves between areas), the lognormal factor captures
// frame-to-frame jitter, and spike is a heavy-tail multiplier applied with
// small probability (the Fig. 4b excursions: sudden scene changes, shader
// compilation, cloud performance variation [30, 79]).
package workload

import (
	"math"
	"math/rand"
	"time"

	"odr/internal/frame"
)

// Params defines one benchmark's intrinsic timing behaviour at the reference
// configuration (720p, private-cloud hardware). Platform and resolution
// scaling are applied on top by the Sampler.
type Params struct {
	Name string

	// Median per-frame costs at the reference configuration.
	RenderMedian time.Duration // GPU render time (step 3)
	CopyMedian   time.Duration // framebuffer copy to the proxy (step 4)
	EncodeMedian time.Duration // video encode in the proxy (step 5)
	DecodeMedian time.Duration // client decode (step 7)

	// Jitter is the sigma of the lognormal frame-to-frame factor.
	Jitter float64

	// SpikeProb is the per-frame probability of a heavy-tail spike;
	// SpikeMax bounds the spike multiplier (uniform in [1.5, SpikeMax]).
	SpikeProb float64
	SpikeMax  float64

	// BytesMedian is the median encoded frame size at the reference
	// resolution (video-stream frames; §6.6 reports 15-60 Mbps overall).
	BytesMedian int

	// InputRate is the mean user-input rate in inputs/second after
	// position-polling combination (§5.3: 2-5 priority frames/second).
	InputRate float64

	// GPUShare is the fraction of the benchmark's power/activity footprint
	// attributable to the GPU (used by the power model; VR benchmarks are
	// GPU-heavy).
	GPUShare float64

	// CPUIPC is the benchmark's uncontended instructions-per-cycle on the
	// reference CPU (feeds the DRAM contention model).
	CPUIPC float64

	// ComplexityWander controls how strongly scene complexity drifts
	// (0 = constant scenes, 1 = strong area-to-area variation).
	ComplexityWander float64
}

// Scale describes the platform/resolution scaling applied to the reference
// parameters.
type Scale struct {
	GPU    float64 // render-time multiplier (e.g. Tesla P4 vs GTX 1080Ti)
	CPU    float64 // copy/encode-time multiplier
	Client float64 // decode-time multiplier
	Pixels float64 // resolution factor relative to 720p (1080p = 2.25)
}

// RefScale is the identity scaling (720p on the private-cloud hardware).
var RefScale = Scale{GPU: 1, CPU: 1, Client: 1, Pixels: 1}

// Source supplies per-frame costs and input arrivals to a pipeline. The
// stochastic Sampler is the default implementation; TraceSampler replays
// recorded traces of real applications.
type Source interface {
	// NextFrame returns the next frame's processing costs.
	NextFrame() Costs
	// NextInputGap returns the time until the next user input.
	NextInputGap() time.Duration
	// NextInputID returns a fresh nonzero input id.
	NextInputID() frame.InputID
}

// Costs carries one frame's sampled processing costs.
type Costs struct {
	Render     time.Duration
	Copy       time.Duration
	Encode     time.Duration
	Decode     time.Duration
	Bytes      int
	Complexity float64
}

// Sampler draws per-frame costs and input arrivals for one benchmark run.
// It is deterministic for a given (Params, Scale, seed).
type Sampler struct {
	p     Params
	s     Scale
	rng   *rand.Rand
	cmplx float64 // current scene-complexity factor

	// Derived multipliers.
	renderBase time.Duration
	copyBase   time.Duration
	encodeBase time.Duration
	decodeBase time.Duration
	bytesBase  float64

	nextInputID frame.InputID
}

// NewSampler returns a sampler for params under scale, seeded with seed.
func NewSampler(p Params, s Scale, seed int64) *Sampler {
	if s.GPU == 0 || s.CPU == 0 || s.Client == 0 || s.Pixels == 0 {
		s = RefScale
	}
	sp := &Sampler{
		p:     p,
		s:     s,
		rng:   rand.New(rand.NewSource(seed)),
		cmplx: 1,
	}
	// Sub-linear GPU scaling with pixels (fill-rate bound only partially),
	// near-linear encode-time scaling, and sub-linear bitstream scaling
	// (inter-frame codecs spend well under 2x the bits on 2.25x the
	// pixels): standard for video pipelines.
	renderPix := math.Pow(s.Pixels, 0.6)
	codecPix := math.Pow(s.Pixels, 0.95)
	bytesPix := math.Pow(s.Pixels, 0.65)
	sp.renderBase = time.Duration(float64(p.RenderMedian) * s.GPU * renderPix)
	sp.copyBase = time.Duration(float64(p.CopyMedian) * s.CPU * s.Pixels)
	sp.encodeBase = time.Duration(float64(p.EncodeMedian) * s.CPU * codecPix)
	sp.decodeBase = time.Duration(float64(p.DecodeMedian) * s.Client * codecPix)
	sp.bytesBase = float64(p.BytesMedian) * bytesPix
	return sp
}

// Params returns the sampler's benchmark parameters.
func (sp *Sampler) Params() Params { return sp.p }

// lognorm returns a lognormal multiplier with median 1 and sigma sig.
func (sp *Sampler) lognorm(sig float64) float64 {
	return math.Exp(sp.rng.NormFloat64() * sig)
}

// spike returns the heavy-tail multiplier (usually 1).
func (sp *Sampler) spike() float64 {
	if sp.rng.Float64() < sp.p.SpikeProb {
		return 1.5 + sp.rng.Float64()*(sp.p.SpikeMax-1.5)
	}
	return 1
}

// stepComplexity advances the mean-reverting scene-complexity walk.
func (sp *Sampler) stepComplexity() {
	w := sp.p.ComplexityWander
	if w <= 0 {
		return
	}
	// Ornstein-Uhlenbeck-style step towards 1 with bounded range.
	sp.cmplx += 0.02*(1-sp.cmplx) + sp.rng.NormFloat64()*0.015*w
	// Occasional scene change: jump to a new level.
	if sp.rng.Float64() < 0.002*w {
		sp.cmplx = 0.8 + sp.rng.Float64()*0.6
	}
	if sp.cmplx < 0.6 {
		sp.cmplx = 0.6
	}
	if sp.cmplx > 1.6 {
		sp.cmplx = 1.6
	}
}

// NextFrame samples the costs of the next frame and advances the scene
// state.
func (sp *Sampler) NextFrame() Costs {
	sp.stepComplexity()
	c := sp.cmplx
	render := time.Duration(float64(sp.renderBase) * c * sp.lognorm(sp.p.Jitter) * sp.spike())
	cp := time.Duration(float64(sp.copyBase) * sp.lognorm(sp.p.Jitter*0.3))
	encode := time.Duration(float64(sp.encodeBase) * c * sp.lognorm(sp.p.Jitter*0.8) * sp.spike())
	decode := time.Duration(float64(sp.decodeBase) * sp.lognorm(sp.p.Jitter*0.5))
	bytes := int(sp.bytesBase * c * sp.lognorm(0.25))
	if bytes < 1000 {
		bytes = 1000
	}
	return Costs{
		Render:     clampPos(render),
		Copy:       clampPos(cp),
		Encode:     clampPos(encode),
		Decode:     clampPos(decode),
		Bytes:      bytes,
		Complexity: c,
	}
}

func clampPos(d time.Duration) time.Duration {
	const floor = 100 * time.Microsecond
	if d < floor {
		return floor
	}
	return d
}

// NextInputGap samples the time until the next user input (exponential
// inter-arrival, i.e. Poisson arrivals at Params.InputRate).
func (sp *Sampler) NextInputGap() time.Duration {
	if sp.p.InputRate <= 0 {
		return math.MaxInt64
	}
	gap := sp.rng.ExpFloat64() / sp.p.InputRate
	// Human inputs have a refractory period; no two inputs within 40ms.
	const minGap = 0.040
	if gap < minGap {
		gap = minGap
	}
	return time.Duration(gap * float64(time.Second))
}

// NextInputID returns a fresh nonzero input id.
func (sp *Sampler) NextInputID() frame.InputID {
	sp.nextInputID++
	return sp.nextInputID
}

// Complexity returns the current scene-complexity factor.
func (sp *Sampler) Complexity() float64 { return sp.cmplx }
