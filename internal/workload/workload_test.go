package workload

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func testParams() Params {
	return Params{
		Name:             "test",
		RenderMedian:     4 * time.Millisecond,
		CopyMedian:       time.Millisecond,
		EncodeMedian:     7 * time.Millisecond,
		DecodeMedian:     3 * time.Millisecond,
		Jitter:           0.25,
		SpikeProb:        0.12,
		SpikeMax:         3.5,
		BytesMedian:      32 << 10,
		InputRate:        3.5,
		GPUShare:         0.6,
		CPUIPC:           0.7,
		ComplexityWander: 0.8,
	}
}

func TestSamplerDeterministic(t *testing.T) {
	a := NewSampler(testParams(), RefScale, 42)
	b := NewSampler(testParams(), RefScale, 42)
	for i := 0; i < 200; i++ {
		ca, cb := a.NextFrame(), b.NextFrame()
		if ca != cb {
			t.Fatalf("frame %d diverged: %+v vs %+v", i, ca, cb)
		}
		if a.NextInputGap() != b.NextInputGap() {
			t.Fatalf("input gap diverged at %d", i)
		}
	}
}

func TestSamplerSeedMatters(t *testing.T) {
	a := NewSampler(testParams(), RefScale, 1)
	b := NewSampler(testParams(), RefScale, 2)
	same := 0
	for i := 0; i < 50; i++ {
		if a.NextFrame() == b.NextFrame() {
			same++
		}
	}
	if same == 50 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestSamplerCostsPositive(t *testing.T) {
	s := NewSampler(testParams(), RefScale, 7)
	for i := 0; i < 5000; i++ {
		c := s.NextFrame()
		if c.Render <= 0 || c.Copy <= 0 || c.Encode <= 0 || c.Decode <= 0 {
			t.Fatalf("non-positive cost at %d: %+v", i, c)
		}
		if c.Bytes < 1000 {
			t.Fatalf("implausible frame size %d", c.Bytes)
		}
		if c.Complexity < 0.6 || c.Complexity > 1.6 {
			t.Fatalf("complexity %v out of range", c.Complexity)
		}
	}
}

func TestSamplerMedianNearConfigured(t *testing.T) {
	s := NewSampler(testParams(), RefScale, 3)
	var renders []float64
	for i := 0; i < 20000; i++ {
		renders = append(renders, s.NextFrame().Render.Seconds()*1000)
	}
	// Median should be near 4ms (complexity drift widens it a little).
	med := median(renders)
	if med < 3.0 || med > 5.2 {
		t.Fatalf("render median = %.2fms, want ~4ms", med)
	}
}

func TestSamplerHeavyTail(t *testing.T) {
	// The §4.1 shape: most frames fast, 10-20% spiking well above. With a
	// 4ms median, the 16.6ms interval should catch the vast majority but
	// not everything at the p99.
	s := NewSampler(testParams(), RefScale, 9)
	n, over := 0, 0
	var maxV time.Duration
	for i := 0; i < 20000; i++ {
		c := s.NextFrame()
		n++
		if c.Render > 16600*time.Microsecond {
			over++
		}
		if c.Render > maxV {
			maxV = c.Render
		}
	}
	frac := float64(over) / float64(n)
	if frac < 0.005 || frac > 0.25 {
		t.Fatalf("fraction of renders above 16.6ms = %.3f, want heavy but minority tail", frac)
	}
	if maxV < 25*time.Millisecond {
		t.Fatalf("max render %v: no real spikes", maxV)
	}
}

func TestScaleEffects(t *testing.T) {
	base := NewSampler(testParams(), RefScale, 5)
	scaled := NewSampler(testParams(), Scale{GPU: 2, CPU: 2, Client: 2, Pixels: 2.25}, 5)
	var br, bp, sr, sp float64
	for i := 0; i < 5000; i++ {
		cb, cs := base.NextFrame(), scaled.NextFrame()
		br += cb.Render.Seconds()
		bp += float64(cb.Bytes)
		sr += cs.Render.Seconds()
		sp += float64(cs.Bytes)
	}
	// GPU 2x and pixels 2.25^0.6 => render ~3.25x slower.
	if ratio := sr / br; ratio < 2.6 || ratio > 4.0 {
		t.Fatalf("render scale ratio = %.2f, want ~3.3", ratio)
	}
	// Bytes scale sub-linearly with pixels (2.25^0.65 ≈ 1.7).
	if ratio := sp / bp; ratio < 1.5 || ratio > 1.95 {
		t.Fatalf("bytes scale ratio = %.2f, want ~1.7", ratio)
	}
}

func TestZeroScaleFallsBackToRef(t *testing.T) {
	s := NewSampler(testParams(), Scale{}, 5)
	c := s.NextFrame()
	if c.Render <= 0 {
		t.Fatal("zero Scale should fall back to RefScale")
	}
}

func TestInputGapRespectssRefractory(t *testing.T) {
	s := NewSampler(testParams(), RefScale, 11)
	var total time.Duration
	n := 3000
	for i := 0; i < n; i++ {
		g := s.NextInputGap()
		if g < 40*time.Millisecond {
			t.Fatalf("gap %v below human refractory period", g)
		}
		total += g
	}
	rate := float64(n) / total.Seconds()
	if rate < 2.0 || rate > 4.5 {
		t.Fatalf("input rate = %.2f/s, want ~3.3 (configured 3.5 minus refractory)", rate)
	}
}

func TestInputGapZeroRate(t *testing.T) {
	p := testParams()
	p.InputRate = 0
	s := NewSampler(p, RefScale, 1)
	if g := s.NextInputGap(); g < time.Duration(math.MaxInt64)/2 {
		t.Fatalf("zero input rate should return effectively infinite gap, got %v", g)
	}
}

func TestInputIDsMonotonic(t *testing.T) {
	s := NewSampler(testParams(), RefScale, 1)
	last := s.NextInputID()
	for i := 0; i < 100; i++ {
		id := s.NextInputID()
		if id <= last {
			t.Fatalf("ids not increasing: %d after %d", id, last)
		}
		last = id
	}
}

// Property: complexity stays in bounds for arbitrary wander settings.
func TestComplexityBoundedProperty(t *testing.T) {
	f := func(seed int64, wander uint8) bool {
		p := testParams()
		p.ComplexityWander = float64(wander) / 64 // up to 4x normal
		s := NewSampler(p, RefScale, seed)
		for i := 0; i < 500; i++ {
			s.NextFrame()
			c := s.Complexity()
			if c < 0.6 || c > 1.6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func median(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}
