package odr_test

import (
	"fmt"
	"time"

	"odr"
)

// ExampleSimulate reproduces the paper's headline comparison for one
// benchmark: ODR at a 60 FPS goal removes the FPS gap that no regulation
// leaves behind.
func ExampleSimulate() {
	noreg, err := odr.Simulate(odr.SimConfig{
		Benchmark: "IM",
		Policy:    odr.PolicyNoReg,
		Duration:  20 * time.Second,
		Seed:      1,
	})
	if err != nil {
		panic(err)
	}
	reg, err := odr.Simulate(odr.SimConfig{
		Benchmark: "IM",
		Policy:    odr.PolicyODR,
		TargetFPS: 60,
		Duration:  20 * time.Second,
		Seed:      1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("NoReg gap > 50: %v\n", noreg.FPSGapMean > 50)
	fmt.Printf("ODR60 gap < 6: %v\n", reg.FPSGapMean < 6)
	fmt.Printf("ODR60 hits target: %v\n", reg.ClientFPS >= 59 && reg.ClientFPS <= 66)
	// Output:
	// NoReg gap > 50: true
	// ODR60 gap < 6: true
	// ODR60 hits target: true
}

// ExamplePacer shows Algorithm 1 directly: fast frames are delayed to the
// interval, a slow frame builds a deficit, and the following frames run
// back-to-back (no delay) until the budget is repaid.
func ExamplePacer() {
	p := odr.NewPacer(60) // 16.67ms interval
	now := time.Duration(0)
	frame := func(processing time.Duration) time.Duration {
		start := now
		now += processing
		d := p.PaceAfter(start, now)
		now += d
		return d
	}
	fmt.Println("fast frame delayed:", frame(5*time.Millisecond) > 10*time.Millisecond)
	fmt.Println("slow frame not delayed:", frame(40*time.Millisecond) == 0)
	fmt.Println("catch-up frame not delayed:", frame(5*time.Millisecond) == 0)
	// Output:
	// fast frame delayed: true
	// slow frame not delayed: true
	// catch-up frame not delayed: true
}
