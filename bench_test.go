// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark regenerates its artifact from the
// simulator and reports the headline values as custom metrics, so
//
//	go test -bench=. -benchmem
//
// prints the same rows/series the paper reports (shape, not absolute
// hardware numbers — see EXPERIMENTS.md for the side-by-side).
package odr

import (
	"testing"
	"time"

	"odr/internal/experiments"
	"odr/internal/pictor"
)

// benchOptions keeps benchmark wall time reasonable: 20 simulated seconds
// per configuration is enough for stable averages.
func benchOptions() experiments.Options {
	return experiments.Options{Duration: 20 * time.Second, Seed: 1}
}

func BenchmarkFig1_FPSGaps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1(benchOptions())
		b.ReportMetric(r.CloudFPS[1], "IM-cloud-fps")
		b.ReportMetric(r.ClientFPS[1], "IM-client-fps")
	}
}

func BenchmarkFig3_RegulationFPS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig3(benchOptions())
		b.ReportMetric(rows[0].RenderFPS, "NoReg-render-fps")
		b.ReportMetric(rows[1].DecodeFPS, "Int60-decode-fps")
		b.ReportMetric(rows[4].DecodeFPS, "RVSMax-decode-fps")
	}
}

func BenchmarkFig4_TimeVariation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig4(benchOptions())
		b.ReportMetric(r.RenderUnder16*100, "render-under-16.6ms-%")
		b.ReportMetric(r.EncodeUnder16*100, "encode-under-16.6ms-%")
	}
}

func BenchmarkFig5_Timelines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig5(benchOptions())
		b.ReportMetric(float64(len(rows)), "schemes")
	}
}

func BenchmarkFig6_MtPLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig6(benchOptions())
		b.ReportMetric(rows[0].MeanMs, "NoReg-mtp-ms")
		b.ReportMetric(rows[2].MeanMs, "IntMax-mtp-ms")
	}
}

func BenchmarkFig7_DRAMEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig7(benchOptions())
		b.ReportMetric(rows[0].MissRate*100, "NoReg-miss-%")
		b.ReportMetric(rows[1].ReadTimeNs, "Int60-read-ns")
	}
}

func BenchmarkTable2_FPSGapMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := experiments.NewMatrix(benchOptions())
		groups := experiments.Table2(m)
		b.ReportMetric(groups[0].AvgGap[experiments.NoReg], "priv720p-noreg-gap")
		b.ReportMetric(groups[0].AvgGap[experiments.ODRMax], "priv720p-odrmax-gap")
		b.ReportMetric(groups[1].AvgGap[experiments.NoReg], "gce720p-noreg-gap")
	}
}

func BenchmarkFig9_QoSAverages(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := experiments.NewMatrix(benchOptions())
		r := experiments.Fig9(m)
		last := len(r.Groups) - 1
		b.ReportMetric(r.ClientFPS[experiments.ODRMax][last], "overall-odrmax-fps")
		b.ReportMetric(r.LatencyMs[experiments.NoReg][last], "overall-noreg-mtp-ms")
		b.ReportMetric(r.LatencyMs[experiments.ODRMax][last], "overall-odrmax-mtp-ms")
	}
}

func BenchmarkFig10_ClientFPSDistributions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := experiments.NewMatrix(benchOptions())
		cells := experiments.Fig10(m)
		b.ReportMetric(float64(len(cells["Priv720p"])), "cells")
	}
}

func BenchmarkFig11_LatencyDistributions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := experiments.NewMatrix(benchOptions())
		cells := experiments.Fig11(m)
		b.ReportMetric(float64(len(cells["GCE720p"])), "cells")
	}
}

func BenchmarkFig12_MemoryEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := experiments.NewMatrix(benchOptions())
		rows := experiments.Fig12(m)
		// The AVG rows are the last 7 entries (one per policy).
		avgNoReg := rows[len(rows)-7]
		avgODR60 := rows[len(rows)-1]
		b.ReportMetric(avgNoReg.IPC, "avg-noreg-ipc")
		b.ReportMetric(avgODR60.IPC, "avg-odr60-ipc")
	}
}

func BenchmarkFig13_Power(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := experiments.NewMatrix(benchOptions())
		rows := experiments.Fig13(m)
		avgNoReg := rows[len(rows)-7]
		avgODR60 := rows[len(rows)-1]
		b.ReportMetric(avgNoReg.Watts, "avg-noreg-watts")
		b.ReportMetric(avgODR60.Watts, "avg-odr60-watts")
	}
}

func BenchmarkFig14Fig15_UserStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := experiments.NewMatrix(benchOptions())
		rows := experiments.UserStudy(m)
		var nonCloud, odrMax float64
		for _, r := range rows {
			switch r.Config {
			case "NonCloud":
				nonCloud = r.Result.MeanRating
			case "ODRMax":
				odrMax = r.Result.MeanRating
			}
		}
		b.ReportMetric(nonCloud, "noncloud-rating")
		b.ReportMetric(odrMax, "odrmax-rating")
	}
}

func BenchmarkSummary_Section66(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := experiments.NewMatrix(benchOptions())
		s := experiments.Summary(m)
		b.ReportMetric(s.NoRegAvgGap, "noreg-avg-gap")
		b.ReportMetric(s.ODRAvgGap, "odr-avg-gap")
		b.ReportMetric(100*(1-s.ODRMaxLat/s.NoRegLat), "odr-mtp-reduction-%")
	}
}

// Ablation benches for the design choices DESIGN.md calls out.

func BenchmarkAblationMulBuf2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationMulBuf2(benchOptions())
		b.ReportMetric(rows[0].MtPMeanMs, "with-buf2-mtp-ms")
		b.ReportMetric(rows[1].MtPMeanMs, "without-buf2-mtp-ms")
	}
}

func BenchmarkAblationAcceleration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationAcceleration(benchOptions())
		b.ReportMetric(rows[0].ClientFPS, "accel-fps")
		b.ReportMetric(rows[1].ClientFPS, "delay-only-fps")
	}
}

func BenchmarkAblationPriority(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationPriority(benchOptions())
		b.ReportMetric(rows[0].MtPMeanMs, "priority-mtp-ms")
		b.ReportMetric(rows[1].MtPMeanMs, "nopriority-mtp-ms")
	}
}

func BenchmarkAblationRVSFeedback(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationRVSFeedback(benchOptions())
		b.ReportMetric(rows[0].ClientFPS, "rtt25ms-fps")
		b.ReportMetric(rows[1].ClientFPS, "rtt1ms-fps")
	}
}

func BenchmarkAblationContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationContention(benchOptions())
		b.ReportMetric(rows[0].ClientFPS, "odrmax-fps")
		b.ReportMetric(rows[3].ClientFPS, "noreg-nocontention-fps")
	}
}

// Extension benches (beyond the paper: §5.2 future work and consolidation).

func BenchmarkExtensionVRR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.VRRStudy(benchOptions())
		for _, r := range rows {
			if r.Config == "ODRMax+VRR" {
				b.ReportMetric(r.Rating, "vrr-rating")
			}
			if r.Config == "ODRMax+fixed60Hz" {
				b.ReportMetric(r.Rating, "fixed-rating")
			}
		}
	}
}

func BenchmarkExtensionConsolidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Consolidation(benchOptions())
		for _, r := range rows {
			if r.Sessions == 3 && r.Policy == "ODR60" {
				b.ReportMetric(float64(r.QoSMet), "odr-x3-qos-met")
				b.ReportMetric(r.ServerWatts, "odr-x3-watts")
			}
			if r.Sessions == 3 && r.Policy == "NoReg" {
				b.ReportMetric(r.MeanMtPMs, "noreg-x3-mtp-ms")
			}
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed: simulated
// pipeline seconds per wall second for a single busy configuration.
func BenchmarkSimulatorThroughput(b *testing.B) {
	o := experiments.Options{Duration: 10 * time.Second, Seed: 1}
	g := pictor.PlatformGroup{Platform: pictor.PrivateCloud, Resolution: pictor.R720p}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := experiments.NewMatrix(o)
		_ = m.Get(pictor.IM, g, experiments.NoReg)
	}
}

// BenchmarkFidelity runs the executable paper-anchor suite and reports how
// many of the 33 anchors land within tolerance.
func BenchmarkFidelity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := experiments.NewMatrix(benchOptions())
		rows := experiments.Fidelity(m)
		passed := 0
		for _, r := range rows {
			if r.OK {
				passed++
			}
		}
		b.ReportMetric(float64(passed), "anchors-passed")
		b.ReportMetric(float64(len(rows)), "anchors-total")
	}
}

// BenchmarkSweepAPM regenerates the §5.3 input-rate validation sweep.
func BenchmarkSweepAPM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.SweepAPM(benchOptions())
		for _, r := range rows {
			if r.X == 5 {
				b.ReportMetric(r.GapMean, "gap-at-300apm")
			}
		}
	}
}

// BenchmarkSweepBandwidth regenerates the bandwidth-cliff sweep.
func BenchmarkSweepBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := experiments.SweepBandwidth(benchOptions())
		for _, r := range out["NoReg"] {
			if r.X == 22 {
				b.ReportMetric(r.MtPMeanMs, "noreg-22mbps-mtp-ms")
			}
		}
		for _, r := range out["ODR60"] {
			if r.X == 22 {
				b.ReportMetric(r.MtPMeanMs, "odr60-22mbps-mtp-ms")
			}
		}
	}
}
