// Regulator comparison: sweep all six Pictor benchmarks under every
// regulation policy on the private cloud and print the §6-style comparison
// table — the workload the paper's introduction motivates (a cloud gaming
// fleet wasting power on frames nobody sees).
package main

import (
	"fmt"
	"log"
	"time"

	"odr"
)

func main() {
	benchmarks := []string{"STK", "0AD", "RE", "D2", "IM", "ITP"}
	policies := []struct {
		name   string
		policy odr.Policy
		target float64
	}{
		{"NoReg", odr.PolicyNoReg, 0},
		{"Int60", odr.PolicyInterval, 60},
		{"RVS60", odr.PolicyRVS, 60},
		{"ODR60", odr.PolicyODR, 60},
		{"ODRMax", odr.PolicyODR, 0},
	}

	fmt.Printf("%-5s", "bench")
	for _, p := range policies {
		fmt.Printf(" | %-24s", p.name)
	}
	fmt.Println()
	fmt.Printf("%-5s", "")
	for range policies {
		fmt.Printf(" | %7s %8s %7s", "client", "MtP(ms)", "W")
	}
	fmt.Println()

	type agg struct{ fps, mtp, w float64 }
	totals := make([]agg, len(policies))
	for _, b := range benchmarks {
		fmt.Printf("%-5s", b)
		for i, p := range policies {
			r, err := odr.Simulate(odr.SimConfig{
				Benchmark: b,
				Policy:    p.policy,
				TargetFPS: p.target,
				Duration:  20 * time.Second,
				Seed:      3,
			})
			if err != nil {
				log.Fatal(err)
			}
			totals[i].fps += r.ClientFPS
			totals[i].mtp += r.MtPMeanMs
			totals[i].w += r.PowerWatts
			fmt.Printf(" | %7.1f %8.1f %7.0f", r.ClientFPS, r.MtPMeanMs, r.PowerWatts)
		}
		fmt.Println()
	}
	fmt.Printf("%-5s", "AVG")
	n := float64(len(benchmarks))
	for i := range policies {
		fmt.Printf(" | %7.1f %8.1f %7.0f", totals[i].fps/n, totals[i].mtp/n, totals[i].w/n)
	}
	fmt.Println()
}
