// Quickstart: simulate InMind on the private cloud with and without ODR and
// print the headline comparison — excessive rendering removed, the 60 FPS
// target met, and motion-to-photon latency reduced.
package main

import (
	"fmt"
	"log"
	"time"

	"odr"
)

func main() {
	run := func(policy odr.Policy, target float64) *odr.SimResult {
		r, err := odr.Simulate(odr.SimConfig{
			Benchmark:  "IM",
			Platform:   "priv",
			Resolution: "720p",
			Policy:     policy,
			TargetFPS:  target,
			Duration:   30 * time.Second,
			Seed:       1,
		})
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	noreg := run(odr.PolicyNoReg, 0)
	odr60 := run(odr.PolicyODR, 60)
	odrMax := run(odr.PolicyODR, 0)

	fmt.Println("InMind, 720p, private cloud (30s simulated):")
	fmt.Printf("%-8s %10s %10s %10s %12s %10s\n", "policy", "render", "client", "FPS gap", "MtP (ms)", "power (W)")
	for _, r := range []*odr.SimResult{noreg, odr60, odrMax} {
		fmt.Printf("%-8s %10.1f %10.1f %10.1f %12.1f %10.1f\n",
			r.Label, r.RenderFPS, r.ClientFPS, r.FPSGapMean, r.MtPMeanMs, r.PowerWatts)
	}
	fmt.Println()
	fmt.Printf("ODR removed %.0f excess frames/s of rendering (%.0f%% of the GPU work),\n",
		noreg.RenderFPS-odr60.RenderFPS, 100*(1-odr60.RenderFPS/noreg.RenderFPS))
	fmt.Printf("met the 60 FPS target at %.1f FPS, cut power by %.0f%% and MtP latency by %.0f%%.\n",
		odr60.ClientFPS, 100*(1-odr60.PowerWatts/noreg.PowerWatts), 100*(1-odr60.MtPMeanMs/noreg.MtPMeanMs))
}
