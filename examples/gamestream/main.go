// Gamestream: the real-time stack end-to-end over a real TCP connection on
// localhost — a server rendering the synthetic game under ODR regulation,
// and a client decoding frames, injecting inputs and measuring FPS and
// motion-to-photon latency.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"odr"
)

func main() {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()

	// Server side.
	serverDone := make(chan struct{})
	go func() {
		defer close(serverDone)
		conn, err := ln.Accept()
		if err != nil {
			log.Print(err)
			return
		}
		srv := odr.NewStreamServer(conn, odr.StreamServerConfig{
			Width: 320, Height: 180,
			Policy:    odr.StreamODR,
			TargetFPS: 60,
			Codec:     odr.CodecOptions{Bands: true},
		})
		if err := srv.Run(); err != nil {
			log.Printf("server: %v", err)
		}
		st := srv.Stats().Snapshot()
		fmt.Printf("server: rendered %d, encoded %d, sent %d, dropped %d, priority %d\n",
			st.Rendered, st.Encoded, st.Sent, st.Dropped, st.Priority)
	}()

	// Client side.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	cli := odr.NewStreamClient(conn)
	clientDone := make(chan struct{})
	go func() {
		defer close(clientDone)
		if err := cli.Run(); err != nil {
			log.Printf("client: %v", err)
		}
	}()

	// Play for three seconds, clicking a few times a second like a human.
	end := time.Now().Add(3 * time.Second)
	for time.Now().Before(end) {
		time.Sleep(280 * time.Millisecond)
		if _, err := cli.SendInput(); err != nil {
			break
		}
	}
	time.Sleep(200 * time.Millisecond)
	rep := cli.Report()
	cli.Stop()
	<-clientDone
	<-serverDone

	fmt.Printf("client: %d frames at %.1f FPS, %.1f KB/frame, MtP mean %.1f ms (p99 %.1f ms, %d samples)\n",
		rep.Frames, rep.FPS, float64(rep.Bytes)/float64(rep.Frames)/1024,
		rep.MeanLatency, rep.P99Latency, rep.LatencySamples)
}
