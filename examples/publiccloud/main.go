// Publiccloud: the paper's headline deployment question — is a conventional
// public cloud (GCE-like path: 25 ms RTT, ~21 Mbps usable, deep buffers)
// viable for cloud gaming? NoReg collapses into seconds of latency from
// network-queue congestion; ODR meets the 60 FPS / 100 ms envelope (§6.4).
package main

import (
	"fmt"
	"log"
	"time"

	"odr"
)

func main() {
	const qosLatencyMs = 100 // action-game bound [14]
	run := func(policy odr.Policy, target float64) *odr.SimResult {
		r, err := odr.Simulate(odr.SimConfig{
			Benchmark:  "IM",
			Platform:   "gce",
			Resolution: "720p",
			Policy:     policy,
			TargetFPS:  target,
			Duration:   40 * time.Second,
			Seed:       5,
		})
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	fmt.Println("InMind, 720p, GCE-like public cloud; QoS envelope: 60 FPS, 100 ms MtP")
	fmt.Printf("%-8s %10s %12s %12s %10s   %s\n", "policy", "client", "MtP (ms)", "p99 (ms)", "Mbps", "verdict")
	for _, c := range []struct {
		p odr.Policy
		t float64
	}{{odr.PolicyNoReg, 0}, {odr.PolicyInterval, 60}, {odr.PolicyRVS, 60}, {odr.PolicyODR, 60}} {
		r := run(c.p, c.t)
		verdict := "FAILS QoS"
		if r.ClientFPS >= 59 && r.MtPMeanMs <= qosLatencyMs {
			verdict = "meets QoS -> public-cloud deployable"
		}
		fmt.Printf("%-8s %10.1f %12.1f %12.1f %10.1f   %s\n",
			r.Label, r.ClientFPS, r.MtPMeanMs, r.MtPP99Ms, r.BandwidthMbps, verdict)
	}
}
