// Spectate: one game, many viewers. A Hub renders the synthetic game once
// and streams it to three clients over real TCP — a 60 FPS player who also
// injects inputs, a full-rate spectator, and a 10 FPS thumbnail preview.
// Each viewer has its own encoder and ODR pacing, so the slow preview never
// stalls the player, and the player's input flash is visible to everyone
// while the motion-to-photon sample is attributed only to the player.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"odr"
)

func main() {
	hub := odr.NewHub(odr.HubConfig{Width: 320, Height: 180, TargetFPS: 60})
	go hub.Run()
	defer hub.Stop()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()

	// Accept loop: first connection is the player (full rate), then a
	// full-rate spectator, then a quarter-resolution 10 FPS thumbnail.
	plans := []odr.HubAttachOptions{
		{},                            // player
		{},                            // spectator
		{ClientFPS: 10, Downscale: 2}, // thumbnail
	}
	go func() {
		for i := 0; ; i++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			var opts odr.HubAttachOptions
			if i < len(plans) {
				opts = plans[i]
			}
			hub.AttachWithOptions(conn, opts)
		}
	}()

	dial := func() *odr.StreamClient {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		c := odr.NewStreamClient(conn)
		go func() {
			if err := c.Run(); err != nil {
				log.Printf("client: %v", err)
			}
		}()
		return c
	}
	player := dial()
	spectator := dial()
	thumbnail := dial()

	// Play for two seconds with a few clicks.
	end := time.Now().Add(2 * time.Second)
	for time.Now().Before(end) {
		time.Sleep(300 * time.Millisecond)
		if _, err := player.SendInput(); err != nil {
			break
		}
	}
	time.Sleep(200 * time.Millisecond)

	for _, row := range []struct {
		name string
		c    *odr.StreamClient
	}{{"player", player}, {"spectator", spectator}, {"thumbnail", thumbnail}} {
		rep := row.c.Report()
		fmt.Printf("%-10s %4d frames at %5.1f FPS", row.name, rep.Frames, rep.FPS)
		if rep.LatencySamples > 0 {
			fmt.Printf("   MtP %5.1f ms over %d inputs", rep.MeanLatency, rep.LatencySamples)
		}
		fmt.Println()
		row.c.Stop()
	}
	fmt.Printf("hub rendered %d frames once for all three viewers\n", hub.Rendered())
}
