// Package odr is the public API of the OnDemand Rendering (ODR)
// reproduction — the cloud-3D FPS-regulation system of "Improving Resource
// and Energy Efficiency for Cloud 3D through Excessive Rendering Reduction"
// (EuroSys 2024).
//
// The package offers three entry points:
//
//   - Simulate runs the discrete-event cloud-3D pipeline under a chosen
//     regulation policy and benchmark/platform configuration and returns the
//     paper's metrics (FPS, FPS gap, motion-to-photon latency, DRAM
//     behaviour, power).
//
//   - NewStreamServer / NewStreamClient build the real-time streaming stack:
//     a server that renders a synthetic game, regulates it with ODR (or a
//     baseline), encodes frames with a real codec and streams them over any
//     net.Conn; and a measuring client.
//
//   - The re-exported core types (MultiBuffer, Pacer, InputBox) are the
//     paper's mechanisms themselves, usable in other pipelines via the
//     small Domain/Waiter runtime abstraction.
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// paper-versus-measured results.
package odr

import (
	"fmt"
	"net"
	"os"
	"time"

	"odr/internal/chaos"
	"odr/internal/cluster"
	"odr/internal/codec"
	"odr/internal/core"
	"odr/internal/obs"
	"odr/internal/pictor"
	"odr/internal/pipeline"
	"odr/internal/realrt"
	"odr/internal/regulator"
	"odr/internal/stream"
	"odr/internal/workload"
)

// Core mechanism re-exports: these are the §5 components.
type (
	// MultiBuffer is ODR's stage-synchronizing front/back frame buffer
	// (§5.1).
	MultiBuffer = core.MultiBuffer
	// Pacer is the accumulated-delay FPS regulator of Algorithm 1 (§5.2).
	Pacer = core.Pacer
	// InputBox implements PriorityFrame's input observation and
	// interruptible render delay (§5.3).
	InputBox = core.InputBox
	// Domain and Waiter are the runtime abstraction the components run on
	// (virtual time in the simulator, wall clock in the stream stack).
	Domain = core.Domain
	Waiter = core.Waiter
)

// NewMultiBuffer returns an empty multi-buffer in dom.
func NewMultiBuffer(dom Domain) *MultiBuffer { return core.NewMultiBuffer(dom) }

// NewPacer returns an Algorithm 1 pacer targeting targetFPS (0 disables
// pacing).
func NewPacer(targetFPS float64) *Pacer { return core.NewPacer(targetFPS) }

// NewInputBox returns an empty input box in dom.
func NewInputBox(dom Domain) *InputBox { return core.NewInputBox(dom) }

// NewRealtimeDomain returns a wall-clock Domain (with NewRealtimeWaiter for
// its goroutines), for using the core components outside the provided
// stacks.
func NewRealtimeDomain() Domain { return realrt.NewDomain() }

// NewRealtimeWaiter returns a Waiter for dom, which must have been created
// by NewRealtimeDomain.
func NewRealtimeWaiter(dom Domain) Waiter { return realrt.NewWaiter(dom.(*realrt.Domain)) }

// Policy names a regulation policy for Simulate.
type Policy string

// The available regulation policies.
const (
	PolicyNoReg    Policy = "noreg" // no regulation (the §4 baseline)
	PolicyInterval Policy = "int"   // interval-based regulation (§2)
	PolicyRVS      Policy = "rvs"   // Remote VSync (§2, [49])
	PolicyODR      Policy = "odr"   // OnDemand Rendering (§5)
)

// SimConfig configures one Simulate run. Zero values pick the defaults
// shown on each field.
type SimConfig struct {
	// Benchmark is one of STK, 0AD, RE, D2, IM (default), ITP.
	Benchmark string
	// Platform is "priv" (default) or "gce".
	Platform string
	// Resolution is "720p" (default) or "1080p".
	Resolution string
	// Policy selects the regulator (default PolicyODR).
	Policy Policy
	// TargetFPS is the QoS goal: 0 maximizes FPS; for PolicyRVS it is the
	// client display refresh rate.
	TargetFPS float64
	// Duration is the measured simulated time (default 60s).
	Duration time.Duration
	// Seed makes the run reproducible (default 1).
	Seed int64
	// Trace, when non-nil, records the frame lifecycle of the run as spans
	// and instants on the virtual clock; export it afterwards with
	// Trace.WriteChromeTrace or Trace.WriteCSV.
	Trace *Tracer
	// Metrics, when non-nil, receives live counters, gauges and latency
	// histograms during the run (snapshot with Metrics.Snapshot).
	Metrics *MetricsRegistry
	// TraceCSVPath, when set, replays a recorded frame-cost trace (the
	// odrtrace -kind trace format) instead of the stochastic benchmark
	// model. Benchmark still selects input rate and power/DRAM character.
	TraceCSVPath string
}

// SimResult is the subset of pipeline metrics exposed publicly.
type SimResult struct {
	Label          string
	RenderFPS      float64
	EncodeFPS      float64
	ClientFPS      float64
	FPSGapMean     float64
	FPSGapMax      float64
	MtPMeanMs      float64
	MtPP99Ms       float64
	DRAMMissRate   float64
	DRAMReadNs     float64
	IPC            float64
	PowerWatts     float64
	BandwidthMbps  float64
	FramesRendered int64
	FramesDropped  int64
	PriorityFrames int64
}

func benchmarkOf(name string) (pictor.Benchmark, error) {
	if name == "" {
		return pictor.IM, nil
	}
	for _, b := range pictor.Benchmarks {
		if string(b) == name {
			return b, nil
		}
	}
	return "", fmt.Errorf("odr: unknown benchmark %q (want one of %v)", name, pictor.Benchmarks)
}

// Simulate runs the cloud-3D pipeline simulator once.
func Simulate(cfg SimConfig) (*SimResult, error) {
	b, err := benchmarkOf(cfg.Benchmark)
	if err != nil {
		return nil, err
	}
	plat := pictor.PrivateCloud
	switch cfg.Platform {
	case "", "priv", "private":
	case "gce", "GCE":
		plat = pictor.GoogleGCE
	default:
		return nil, fmt.Errorf("odr: unknown platform %q (want priv or gce)", cfg.Platform)
	}
	res := pictor.R720p
	switch cfg.Resolution {
	case "", "720p":
	case "1080p":
		res = pictor.R1080p
	default:
		return nil, fmt.Errorf("odr: unknown resolution %q (want 720p or 1080p)", cfg.Resolution)
	}
	pol := cfg.Policy
	if pol == "" {
		pol = PolicyODR
	}
	var factory pipeline.PolicyFactory
	switch pol {
	case PolicyNoReg:
		factory = func(ctx *regulator.Ctx) regulator.Policy { return regulator.NewNoReg(ctx) }
	case PolicyInterval:
		factory = func(ctx *regulator.Ctx) regulator.Policy { return regulator.NewInterval(ctx, cfg.TargetFPS) }
	case PolicyRVS:
		hz := cfg.TargetFPS
		if hz == 0 {
			hz = 240
		}
		factory = func(ctx *regulator.Ctx) regulator.Policy { return regulator.NewRVS(ctx, hz, 0) }
	case PolicyODR:
		factory = func(ctx *regulator.Ctx) regulator.Policy {
			return regulator.NewODR(ctx, regulator.ODROptions{TargetFPS: cfg.TargetFPS})
		}
	default:
		return nil, fmt.Errorf("odr: unknown policy %q", pol)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	pc := pipeline.Config{
		Workload: b.Params(),
		Scale:    pictor.Scale(plat, res),
		Net:      pictor.Network(plat),
		Policy:   factory,
		Duration: cfg.Duration,
		Seed:     seed,
		Trace:    cfg.Trace,
		Metrics:  cfg.Metrics,
	}
	if cfg.TraceCSVPath != "" {
		f, err := os.Open(cfg.TraceCSVPath)
		if err != nil {
			return nil, fmt.Errorf("odr: opening trace: %w", err)
		}
		rows, err := workload.ParseTraceCSV(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		src, err := workload.NewTraceSampler(rows, b.Params().InputRate, seed)
		if err != nil {
			return nil, err
		}
		pc.Source = src
	}
	r := pipeline.Run(pc)
	return &SimResult{
		Label:          r.Label,
		RenderFPS:      r.RenderFPS,
		EncodeFPS:      r.EncodeFPS,
		ClientFPS:      r.ClientFPS,
		FPSGapMean:     r.GapMean,
		FPSGapMax:      r.GapMax,
		MtPMeanMs:      r.MtP.Mean(),
		MtPP99Ms:       r.MtP.Percentile(99),
		DRAMMissRate:   r.MissRate,
		DRAMReadNs:     r.ReadTimeNs,
		IPC:            r.IPC,
		PowerWatts:     r.PowerWatts,
		BandwidthMbps:  r.BandwidthMbps,
		FramesRendered: r.FramesRendered,
		FramesDropped:  r.FramesDropped,
		PriorityFrames: r.PriorityFrames,
	}, nil
}

// Streaming stack re-exports.
type (
	// StreamServer streams a synthetic 3D application over a net.Conn
	// under a regulation policy.
	StreamServer = stream.Server
	// StreamServerConfig configures a StreamServer.
	StreamServerConfig = stream.ServerConfig
	// StreamClient decodes a stream and measures client-side QoS.
	StreamClient = stream.Client
	// StreamPolicy selects the server's regulation strategy.
	StreamPolicy = stream.PolicyKind
	// ClientReport summarizes client-side measurements.
	ClientReport = stream.Report
	// CodecOptions configures the frame codec (quantization, keyframe
	// interval, band-skip delta coding, keyframe striping, tile cache).
	CodecOptions = codec.Options
	// TileCache is the content-addressed encoded-tile cache v2 encoders can
	// share (CodecOptions.Cache): a tile's payload is a pure function of its
	// content bytes, so sharing one cache across encoders, lanes and worker
	// counts never changes any bitstream byte.
	TileCache = codec.TileCache
)

// NewTileCache returns a bounded shared tile cache (maxBytes <= 0 selects
// the default budget).
func NewTileCache(maxBytes int64) *TileCache { return codec.NewTileCache(maxBytes) }

// The streaming regulation strategies.
const (
	StreamNoReg    = stream.NoRegulation
	StreamInterval = stream.IntervalRegulation
	StreamODR      = stream.ODRRegulation
)

// NewStreamServer prepares a streaming server on conn.
func NewStreamServer(conn net.Conn, cfg StreamServerConfig) *StreamServer {
	return stream.NewServer(conn, cfg)
}

// NewStreamClient wraps conn as a measuring stream client.
func NewStreamClient(conn net.Conn) *StreamClient { return stream.NewClient(conn) }

// Resilience: reconnecting clients, graceful drain, and deterministic fault
// injection for testing the stack under network failure.
type (
	// ReconnectPolicy bounds how a reconnecting client chases a flaky
	// server: exponential backoff with jitter, a consecutive-failure budget,
	// and an idle timeout that catches half-open connections.
	ReconnectPolicy = stream.ReconnectPolicy
	// ChaosSchedule scripts byte-offset-anchored faults (latency, loss,
	// corruption, stalls, disconnects) onto a connection; same schedule +
	// seed + traffic always yields the same fault sequence.
	ChaosSchedule = chaos.Schedule
	// ChaosConn is a net.Conn executing a ChaosSchedule; EventLog returns
	// every fault it injected.
	ChaosConn = chaos.Conn
)

// ErrStreamDrainTimeout is returned by StreamServer.Drain and Hub.Drain when
// the graceful flush did not finish in time.
var ErrStreamDrainTimeout = stream.ErrDrainTimeout

// NewReconnectingStreamClient returns a stream client that obtains
// connections from dial and, when a session dies mid-stream, redials under
// pol and resumes via the keyframe resync path.
func NewReconnectingStreamClient(dial func() (net.Conn, error), pol ReconnectPolicy) *StreamClient {
	return stream.NewReconnectingClient(dial, pol)
}

// ParseChaosSchedule parses a fault schedule spec like
// "latency@0:2ms,loss@49152x2,disc@147456".
func ParseChaosSchedule(spec string) (ChaosSchedule, error) { return chaos.Parse(spec) }

// NamedChaosSchedule returns a predefined schedule (clean, flaky, lossy,
// degraded, partition).
func NamedChaosSchedule(name string) (ChaosSchedule, error) { return chaos.Named(name) }

// ChaosSchedules lists the predefined schedule names.
func ChaosSchedules() []string { return chaos.NamedSchedules() }

// WrapChaos wraps conn so it executes sched with the given RNG seed.
func WrapChaos(conn net.Conn, sched ChaosSchedule, seed int64) *ChaosConn {
	return chaos.Wrap(conn, sched, seed)
}

// Hub streams one shared game to many clients ("render once, encode once,
// view many"): sessions at the same resolution share a lane encoder, each
// frame is encoded once per lane and fanned out, and late joiners are served
// catch-up keyframes spliced from shared encoder state. Pacing and
// latest-wins regulation stay per-session; see stream.Hub.
type (
	Hub          = stream.Hub
	HubConfig    = stream.HubConfig
	SessionStats = stream.SessionStats
	// HubAttachOptions configures one viewer (pacing, downscaling).
	HubAttachOptions = stream.AttachOptions
)

// NewHub returns a multi-client streaming hub.
func NewHub(cfg HubConfig) *Hub { return stream.NewHub(cfg) }

// Hub fan-out metric names, exported by a hub built with a MetricsRegistry
// as counters labeled by lane (downscale divisor).
const (
	// NameHubSharedEncodes counts frames encoded once on a shared lane
	// encoder, however many viewers the artifact fanned out to.
	NameHubSharedEncodes = stream.NameHubSharedEncodes
	// NameHubSplicedKeyframes counts catch-up keyframes spliced from shared
	// encoder state for late joiners and resyncing viewers.
	NameHubSplicedKeyframes = stream.NameHubSplicedKeyframes
	// NameHubSplicedDeltas counts catch-up deltas spliced for viewers a few
	// frames behind the shared stream.
	NameHubSplicedDeltas = stream.NameHubSplicedDeltas
	// NameHubSplicedTiles counts payload-carrying tiles across all spliced
	// frames; with the tile cache wired it closes the conservation identity
	// cache hits + misses == dirty tiles + spliced tiles.
	NameHubSplicedTiles = stream.NameHubSplicedTiles
)

// Hub sender-engine metric names (unlabeled; one engine per hub): the sender
// worker pool's queue depth, the pacing timer wheel's firing lag, and the
// frames whose socket flushes coalesced onto shared worker wakeups.
const (
	NameHubSenderQueueDepth = stream.NameHubSenderQueueDepth
	NameHubTimerwheelLagUs  = stream.NameHubTimerwheelLagUs
	NameHubCoalescedWrites  = stream.NameHubCoalescedWrites
)

// Encoded-tile cache metric names (unlabeled counters; one cache serves
// every lane of a hub).
const (
	NameCodecTileCacheHits      = stream.NameCodecTileCacheHits
	NameCodecTileCacheMisses    = stream.NameCodecTileCacheMisses
	NameCodecTileCacheEvictions = stream.NameCodecTileCacheEvictions
)

// Observability re-exports: the frame-lifecycle tracer, the telemetry
// registry, and the live debug endpoint. All are nil-safe — a nil *Tracer or
// *MetricsRegistry turns every recording call into a no-op, so observability
// can be compiled in and switched off without cost.
type (
	// Tracer records frame-lifecycle spans and instants into a fixed-size
	// lock-free ring; export with WriteChromeTrace (chrome://tracing /
	// Perfetto) or WriteCSV.
	Tracer = obs.Tracer
	// TraceEvent is one recorded tracer event.
	TraceEvent = obs.Event
	// MetricsRegistry holds named counters, gauges and log-bucketed latency
	// histograms, snapshotable as JSON.
	MetricsRegistry = obs.Registry
	// DebugServer is the live observability HTTP endpoint started by
	// ServeDebug.
	DebugServer = obs.DebugServer
)

// NewTracer returns a tracer keeping the most recent events (capacity is
// rounded up to a power of two; 0 picks the default).
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// NewMetricsRegistry returns an empty telemetry registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// ServeDebug starts an HTTP listener on addr serving /debug/odr (the given
// snapshot as JSON), /debug/vars (expvar) and /debug/pprof/. Close the
// returned server to stop it.
func ServeDebug(addr string, snapshot func() any) (*DebugServer, error) {
	return obs.ServeDebug(addr, snapshot)
}

// ServeDebugWithMetrics is ServeDebug plus a Prometheus surface: /metrics
// serves reg's instruments (labeled series included, plus Go runtime stats
// and odr_build_info) in text exposition format 0.0.4 — scrapeable by
// Prometheus, cmd/odrtop and the internal/obs/scrape harness.
func ServeDebugWithMetrics(addr string, reg *MetricsRegistry, snapshot func() any) (*DebugServer, error) {
	return obs.ServeDebugRegistry(addr, reg, snapshot)
}

// Distributed control plane re-exports: a master that places sessions on
// registered workers by load score and drains or migrates them on failure
// and scale-down. Migration reuses the stream layer's own machinery — the
// handoff is "drain, redirect, reconnect, keyreq". See internal/cluster.
type (
	// ClusterMaster owns the worker registry, heartbeat deadlines and
	// placement; serve its Handler and run its deadline reaper.
	ClusterMaster = cluster.Master
	// ClusterMasterConfig configures a ClusterMaster.
	ClusterMasterConfig = cluster.MasterConfig
	// ClusterWorker is the worker-side agent: register, heartbeat with load
	// reports, obey drain orders.
	ClusterWorker = cluster.Worker
	// ClusterWorkerConfig configures a ClusterWorker.
	ClusterWorkerConfig = cluster.WorkerConfig
	// ClusterResolver dials the data plane through a master placement query;
	// plug its Dial into NewReconnectingStreamClient.
	ClusterResolver = cluster.Resolver
	// ClusterLoadReport is a worker's self-reported placement load.
	ClusterLoadReport = cluster.LoadReport
	// ClusterWorkerInfo is the master's view of one registered worker.
	ClusterWorkerInfo = cluster.WorkerInfo
)

// ErrClusterNoWorkers is returned by ClusterMaster.Place when no alive
// worker is registered.
var ErrClusterNoWorkers = cluster.ErrNoWorkers

// NewClusterMaster returns a cluster master; start its heartbeat-deadline
// reaper with go m.Run() and serve m.Handler() on the control address.
func NewClusterMaster(cfg ClusterMasterConfig) *ClusterMaster { return cluster.NewMaster(cfg) }

// NewClusterWorker returns a worker agent; drive it with Run.
func NewClusterWorker(cfg ClusterWorkerConfig) *ClusterWorker { return cluster.NewWorker(cfg) }

// NewClusterResolver returns a placement resolver against the given master
// control URL.
func NewClusterResolver(masterURL string) *ClusterResolver { return cluster.NewResolver(masterURL) }

// RegisterClusterMetrics pre-registers the odr_cluster_* metric surface in
// reg (for lint gates and dashboards that want the families present before
// the first worker registers).
func RegisterClusterMetrics(reg *MetricsRegistry) { cluster.RegisterClusterMetrics(reg) }

// ThrottleConfig shapes a connection like a wide-area path (bandwidth cap,
// propagation delay, bounded buffering).
type ThrottleConfig = stream.ThrottleConfig

// Throttle wraps conn so its writes experience the configured path shaping;
// it lets the real-time stack reproduce public-cloud conditions (including
// the §6.4 congestion collapse) on a loopback connection.
func Throttle(conn net.Conn, cfg ThrottleConfig) net.Conn { return stream.Throttle(conn, cfg) }
