package odr

import (
	"net"
	"os"
	"testing"
	"time"
)

func TestSimulateDefaults(t *testing.T) {
	r, err := Simulate(SimConfig{Duration: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if r.Label != "ODRMax" {
		t.Fatalf("default label = %q, want ODRMax", r.Label)
	}
	if r.ClientFPS < 30 || r.FramesRendered == 0 {
		t.Fatalf("implausible result: %+v", r)
	}
}

func TestSimulateODRBeatsNoReg(t *testing.T) {
	base := SimConfig{Benchmark: "IM", Duration: 15 * time.Second, Seed: 2}
	nrCfg := base
	nrCfg.Policy = PolicyNoReg
	nr, err := Simulate(nrCfg)
	if err != nil {
		t.Fatal(err)
	}
	odrCfg := base
	odrCfg.Policy = PolicyODR
	odr, err := Simulate(odrCfg)
	if err != nil {
		t.Fatal(err)
	}
	if odr.FPSGapMean >= nr.FPSGapMean/5 {
		t.Fatalf("ODR gap %.1f not well below NoReg %.1f", odr.FPSGapMean, nr.FPSGapMean)
	}
	if odr.PowerWatts >= nr.PowerWatts {
		t.Fatalf("ODR power %.1f >= NoReg %.1f", odr.PowerWatts, nr.PowerWatts)
	}
}

func TestSimulateValidation(t *testing.T) {
	cases := []SimConfig{
		{Benchmark: "nope"},
		{Platform: "aws"},
		{Resolution: "4k"},
		{Policy: "magic"},
	}
	for _, c := range cases {
		if _, err := Simulate(c); err == nil {
			t.Errorf("config %+v: expected error", c)
		}
	}
}

func TestSimulateAllBenchmarksAndPlatforms(t *testing.T) {
	for _, b := range []string{"STK", "0AD", "RE", "D2", "IM", "ITP"} {
		for _, p := range []string{"priv", "gce"} {
			r, err := Simulate(SimConfig{
				Benchmark: b, Platform: p, Policy: PolicyODR, TargetFPS: 60,
				Duration: 5 * time.Second,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", b, p, err)
			}
			if r.ClientFPS < 40 {
				t.Errorf("%s/%s: ODR60 client FPS %.1f", b, p, r.ClientFPS)
			}
		}
	}
}

func TestCoreReexportsUsable(t *testing.T) {
	dom := NewRealtimeDomain()
	mb := NewMultiBuffer(dom)
	pacer := NewPacer(60)
	box := NewInputBox(dom)
	if mb == nil || pacer == nil || box == nil {
		t.Fatal("constructors returned nil")
	}
	if pacer.Interval() != time.Second/60 {
		t.Fatalf("pacer interval = %v", pacer.Interval())
	}
	w := NewRealtimeWaiter(dom)
	if got := box.DelayInterruptible(w, time.Millisecond); got {
		t.Fatal("no input was pending")
	}
}

func TestStreamFacade(t *testing.T) {
	sc, cc := net.Pipe()
	srv := NewStreamServer(sc, StreamServerConfig{Width: 32, Height: 18, Policy: StreamODR, TargetFPS: 60})
	cli := NewStreamClient(cc)
	srvDone := make(chan error, 1)
	cliDone := make(chan error, 1)
	go func() { srvDone <- srv.Run() }()
	go func() { cliDone <- cli.Run() }()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && cli.Report().Frames < 10 {
		time.Sleep(5 * time.Millisecond)
	}
	rep := cli.Report()
	cli.Stop()
	srv.Stop()
	if err := <-srvDone; err != nil {
		t.Fatalf("server: %v", err)
	}
	if err := <-cliDone; err != nil {
		t.Fatalf("client: %v", err)
	}
	if rep.Frames < 10 {
		t.Fatalf("frames = %d", rep.Frames)
	}
}

func TestSimulateTraceReplay(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/trace.csv"
	csv := "render_ms,copy_ms,encode_ms,decode_ms,bytes\n"
	for i := 0; i < 200; i++ {
		csv += "5.0,1.0,10.0,3.0,36000\n"
	}
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Simulate(SimConfig{
		Benchmark: "IM", Policy: PolicyODR, TargetFPS: 0,
		Duration: 10 * time.Second, TraceCSVPath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Encode-bound constant trace: ~1000/11ms with contention ≈ 85-92 FPS.
	if r.ClientFPS < 80 || r.ClientFPS > 95 {
		t.Fatalf("trace-driven FPS = %.1f, want ~88", r.ClientFPS)
	}
	if _, err := Simulate(SimConfig{TraceCSVPath: dir + "/missing.csv", Duration: time.Second}); err == nil {
		t.Fatal("missing trace accepted")
	}
}
